"""Job-scoped crash routing, restart-with-replay, and recovery SLOs.

Explicit (non-generated) crash schedules pin down the tentpole semantics:
an ``aggregator_crash`` addressed by ``job_index`` (nth job to register
ranks) or ``job`` (label) tears down exactly that job; the fleet's restart
policy re-queues it pinned to its original nodes, where the replay path
rewrites its journaled extents; and the per-job recovery SLOs hold.  The
determinism class extends the engine/dataplane/fabric differential matrix
of ``test_fleet.py`` to a fleet that crashes and restarts mid-run.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.faults import FaultSchedule, FaultSpec
from repro.fleet import FleetSpec, run_fleet, run_fleet_chaos

QUICK = 0.03125  # the CI quick scale used across the benchmark grids

SMOKE = FleetSpec(fleet_size=8, num_nodes=8, job_nodes=(1, 2), scale=QUICK)
AB = FleetSpec(fleet_size=64, scale=QUICK)

# One crash per addressing mode, anchored on the first write milestone so
# the teardown lands while the job is still running.  Job 2 is
# cache-enabled (even id), so its restart exercises journal replay; j7 is
# cache-disabled, so its restart must work with nothing to replay.
CRASHES = FaultSchedule.of(
    FaultSpec(
        "aggregator_crash", target=0, on_event="write_done:0", delay=2e-4, job_index=2
    ),
    FaultSpec(
        "aggregator_crash", target=1, on_event="write_done:0", delay=2e-4, job="j7"
    ),
)
AB_CRASHES = FaultSchedule.of(
    FaultSpec(
        "aggregator_crash", target=0, on_event="write_done:0", delay=2e-4, job_index=10
    ),
    FaultSpec(
        "aggregator_crash", target=1, on_event="write_done:0", delay=2e-4, job="j32"
    ),
)


def identity_json(result) -> str:
    return json.dumps(result.identity(), sort_keys=True)


class TestCrashRestartReplay:
    """Both addressed jobs crash, restart pinned, replay, and finish ok."""

    @pytest.fixture(scope="class")
    def outcome(self):
        views = {}
        result = run_fleet(
            SMOKE,
            faults=CRASHES,
            on_complete=lambda job, view, row: views.__setitem__(job.job_id, view),
        )
        return result, views

    def test_only_the_addressed_jobs_crash(self, outcome):
        result, _ = outcome
        assert {r.job_id for r in result.jobs if r.first_crash_time > 0} == {2, 7}
        for row in result.jobs:
            if row.job_id not in (2, 7):
                assert row.restarts == 0
                assert row.time_to_restart == 0.0

    def test_crashed_jobs_restart_and_finish_ok(self, outcome):
        result, _ = outcome
        for job_id in (2, 7):
            row = result.jobs[job_id]
            assert row.status == "ok"
            assert row.restarts == 1
            assert row.time_to_restart > 0
            assert row.slo_ok, row.slo_violations

    def test_cached_job_replays_its_journals_losslessly(self, outcome):
        result, _ = outcome
        cached = result.jobs[2]
        assert cached.cache_mode == "enabled"
        assert cached.bytes_replayed > 0
        assert cached.bytes_lost == 0
        assert cached.degraded_window >= cached.time_to_restart

    def test_uncached_job_restarts_with_nothing_to_replay(self, outcome):
        result, _ = outcome
        direct = result.jobs[7]
        assert direct.cache_mode == "disabled"
        assert direct.bytes_replayed == 0
        assert direct.bytes_lost == 0

    def test_restart_is_pinned_to_the_original_placement(self, outcome):
        result, views = outcome
        # The JobView keeps its first-launch placement; the row records the
        # final incarnation's.  Equality means the restart landed on the
        # nodes that hold the job's journals — which is also the only way
        # the cached job's replay above could have found them.
        for job_id in (2, 7):
            assert result.jobs[job_id].placement == views[job_id].placement

    def test_exhausted_restart_budget_fails_the_job_without_losing_bytes(self):
        views = {}
        result = run_fleet(
            replace(SMOKE, max_restarts=0),
            faults=CRASHES,
            on_complete=lambda job, view, row: views.__setitem__(job.job_id, view),
        )
        for job_id in (2, 7):
            row = result.jobs[job_id]
            assert row.status == "failed"
            assert row.restarts == 0
            assert row.first_crash_time > 0
        # The failed cached job's unflushed extents stay journaled: nothing
        # reported lost beyond what the journals still hold.
        cached_unflushed = sum(
            j.unflushed_bytes for j in views[2].recovery.entries()
        )
        assert cached_unflushed > 0
        assert result.jobs[2].bytes_lost <= cached_unflushed
        assert result.summary["failed"] == 2


class TestCrashDeterminism:
    """One 64-job fleet with two crash+restart jobs, byte-identical under
    independently varied engine, dataplane and fabric kernel."""

    @pytest.fixture(scope="class")
    def reference(self):
        result = run_fleet(AB, faults=AB_CRASHES)
        # The matrix is only meaningful if the seeded crashes actually fire
        # and drive the restart/replay machinery in the reference timeline.
        crashed = [r for r in result.jobs if r.first_crash_time > 0]
        assert len(crashed) == 2
        assert all(r.restarts == 1 and r.status == "ok" for r in crashed)
        assert any(r.bytes_replayed > 0 for r in crashed)
        return identity_json(result)

    def test_heapq_engine_matches(self, reference, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "heapq")
        assert identity_json(run_fleet(AB, faults=AB_CRASHES)) == reference

    def test_chunked_dataplane_matches(self, reference):
        assert (
            identity_json(run_fleet(AB, faults=AB_CRASHES, dataplane="chunked"))
            == reference
        )

    def test_incremental_fabric_matches(self, reference, monkeypatch):
        monkeypatch.setenv("REPRO_FABRIC", "incremental")
        assert identity_json(run_fleet(AB, faults=AB_CRASHES)) == reference


class TestChaosCrashTrial:
    def test_generated_crash_schedule_recovers_within_slo(self):
        result = run_fleet_chaos(
            fleet_size=8, seed=1, scale=QUICK, crash_probability=1.0
        )
        assert result.ok, result.violations
        assert result.crashed_jobs >= 1
        assert result.restarts >= 1
        assert result.statuses.get("ok", 0) == 8

    def test_zero_restart_budget_reports_failed_jobs(self):
        result = run_fleet_chaos(
            fleet_size=8, seed=1, scale=QUICK, crash_probability=1.0, max_restarts=0
        )
        assert result.ok, result.violations
        assert result.crashed_jobs >= 1
        assert result.restarts == 0
        assert result.statuses.get("failed", 0) == result.crashed_jobs
