"""Per-job device attribution in fleet runs.

Fleet jobs share one machine, so device totals alone cannot say which job
aged which SSD.  ``_supervise`` tags the placement's devices with the job
label for the job's lifetime; rows then read the per-tag ledgers.  These
tests pin the contract: cache-enabled jobs attribute bytes, disabled jobs
attribute none, the tags are cleared between jobs, and the per-job sums
never exceed the device totals."""

from __future__ import annotations

from dataclasses import replace

from repro.fleet import FleetSpec, run_fleet

SMOKE = FleetSpec(fleet_size=8, num_nodes=8, job_nodes=(1, 2), scale=0.03125)


class TestDeviceLedger:
    def test_cache_enabled_jobs_attribute_ssd_traffic(self):
        result = run_fleet(SMOKE)
        for job in result.jobs:
            if job.status != "ok":
                continue
            if job.cache_mode == "enabled":
                assert job.ssd_bytes_written > 0, job.job_id
                assert job.ssd_requests > 0, job.job_id
                assert job.nvmm_bytes_written == 0, job.job_id
            else:
                assert job.ssd_bytes_written == 0, job.job_id
                assert job.ssd_bytes_read == 0, job.job_id

    def test_nvmm_fleet_attributes_wal_traffic(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_KIND", "nvmm")
        result = run_fleet(SMOKE)
        for job in result.jobs:
            if job.status != "ok":
                continue
            if job.cache_mode == "enabled":
                assert job.nvmm_bytes_written > 0, job.job_id
                assert job.ssd_bytes_written == 0, job.job_id
            else:
                assert job.nvmm_bytes_written == 0, job.job_id

    def test_attribution_is_deterministic(self):
        a = run_fleet(SMOKE)
        b = run_fleet(SMOKE)
        key = lambda r: (r.ssd_requests, r.ssd_bytes_written, r.ssd_bytes_read)
        assert [key(r) for r in a.jobs] == [key(r) for r in b.jobs]

    def test_rows_serialise_with_ledger_fields(self):
        result = run_fleet(replace(SMOKE, fleet_size=4))
        row = result.jobs[0].to_dict()
        for field in ("ssd_requests", "ssd_bytes_written", "ssd_bytes_read",
                      "nvmm_bytes_written", "nvmm_bytes_read"):
            assert field in row
