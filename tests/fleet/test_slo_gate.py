"""The ``check_bench --slo`` recovery-SLO gate, exercised as a library.

Loads ``benchmarks/check_bench.py`` by path (it is a script, not a
package module) and drives ``main(["--slo", ...])`` against synthetic
fleet reports: the committed ``recovery_slos`` budgets must pass a report
shaped like a healthy crash trial and fail one with an injected
regression — which is the acceptance demonstration that the CI gate
actually bites.
"""

from __future__ import annotations

import copy
import importlib.util
import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
BASELINE = REPO / "benchmarks" / "baseline_quick.json"

# A healthy crash-trial section: values inside the committed budgets
# (reference trial: ttr 0.0050s, replay 0.0097s, window 0.0147s, 0 lost).
GOOD_CRASH = {
    "byte_identical": True,
    "mismatches": [],
    "slotted_bulk": {
        "violations": [],
        "crashed_jobs": 1,
        "restarts": 1,
        "bytes_replayed": 131072,
        "slo_violations": 0,
        "bytes_lost_cached": 0,
        "time_to_restart_max": 0.005,
        "replay_duration_total": 0.0097,
        "degraded_window_max": 0.0147,
    },
}


@pytest.fixture(scope="module")
def check_bench():
    spec = importlib.util.spec_from_file_location(
        "check_bench", REPO / "benchmarks" / "check_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write_report(tmp_path, crash) -> str:
    path = tmp_path / "fleet.json"
    path.write_text(json.dumps({"mode": "quick", "ok": True, "fleet_crash": crash}))
    return str(path)


def run_gate(check_bench, tmp_path, crash) -> int:
    report = write_report(tmp_path, crash)
    return check_bench.main(["--slo", "--fleet", report, "--baseline", str(BASELINE)])


class TestSloGate:
    def test_healthy_crash_trial_passes(self, check_bench, tmp_path):
        assert run_gate(check_bench, tmp_path, GOOD_CRASH) == 0

    def test_injected_replay_regression_fails(self, check_bench, tmp_path, capsys):
        crash = copy.deepcopy(GOOD_CRASH)
        crash["slotted_bulk"]["replay_duration_total"] = 9.9
        assert run_gate(check_bench, tmp_path, crash) == 1
        assert "replay_duration_total 9.9 > budget" in capsys.readouterr().err

    def test_lost_cached_bytes_fail_the_zero_budget(self, check_bench, tmp_path, capsys):
        crash = copy.deepcopy(GOOD_CRASH)
        crash["slotted_bulk"]["bytes_lost_cached"] = 4096
        assert run_gate(check_bench, tmp_path, crash) == 1
        assert "bytes_lost_cached 4096 > budget 0" in capsys.readouterr().err

    def test_identity_divergence_fails(self, check_bench, tmp_path, capsys):
        crash = copy.deepcopy(GOOD_CRASH)
        crash["byte_identical"] = False
        crash["mismatches"] = ["heapq_chunked"]
        assert run_gate(check_bench, tmp_path, crash) == 1
        assert "identities diverge" in capsys.readouterr().err

    def test_crashless_trial_fails(self, check_bench, tmp_path, capsys):
        crash = copy.deepcopy(GOOD_CRASH)
        crash["slotted_bulk"].update(crashed_jobs=0, restarts=0, bytes_replayed=0)
        assert run_gate(check_bench, tmp_path, crash) == 1
        err = capsys.readouterr().err
        assert "injected no crash" in err
        assert "never restarted" in err
        assert "replayed no journal bytes" in err

    def test_report_predating_the_crash_trial_fails(
        self, check_bench, tmp_path, capsys
    ):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({"mode": "quick", "ok": True}))
        rc = check_bench.main(
            ["--slo", "--fleet", str(path), "--baseline", str(BASELINE)]
        )
        assert rc == 1
        assert "fleet_crash section missing" in capsys.readouterr().err
