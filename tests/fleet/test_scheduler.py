"""FleetScheduler: FIFO vs backfill admission, deterministic allocation."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.fleet import FleetScheduler


@dataclass
class Job:
    job_id: int
    nodes: int


class Recorder:
    """Capture launch calls as (job_id, placement) pairs."""

    def __init__(self):
        self.launched: list[tuple[int, tuple[int, ...]]] = []

    def __call__(self, job, placement):
        self.launched.append((job.job_id, placement))


class TestAllocation:
    def test_lowest_free_nodes_first(self):
        rec = Recorder()
        sched = FleetScheduler(4, rec)
        sched.submit(Job(0, 2))
        sched.submit(Job(1, 2))
        assert rec.launched == [(0, (0, 1)), (1, (2, 3))]

    def test_release_resorts_the_pool(self):
        rec = Recorder()
        sched = FleetScheduler(4, rec)
        sched.submit(Job(0, 2))  # takes (0, 1)
        sched.submit(Job(1, 2))  # takes (2, 3)
        sched.release((2, 3))
        sched.release((0, 1))
        sched.submit(Job(2, 4))  # must see the re-sorted full pool
        assert rec.launched[-1] == (2, (0, 1, 2, 3))

    def test_oversized_request_rejected(self):
        sched = FleetScheduler(4, Recorder())
        with pytest.raises(ValueError, match="requests 8 nodes"):
            sched.submit(Job(0, 8))


class TestAdmission:
    def test_fifo_head_blocks_the_queue(self):
        rec = Recorder()
        sched = FleetScheduler(4, rec, backfill=False)
        sched.submit(Job(0, 3))  # running on (0, 1, 2)
        sched.submit(Job(1, 2))  # blocked head: only node 3 free
        sched.submit(Job(2, 1))  # would fit, but FIFO may not pass the head
        assert [j for j, _ in rec.launched] == [0]
        sched.release((0, 1, 2))
        assert [j for j, _ in rec.launched] == [0, 1, 2]
        assert sched.backfilled == 0

    def test_backfill_slides_past_a_blocked_head(self):
        rec = Recorder()
        sched = FleetScheduler(4, rec, backfill=True)
        sched.submit(Job(0, 3))
        sched.submit(Job(1, 2))  # blocked head
        sched.submit(Job(2, 1))  # backfills onto node 3
        assert [j for j, _ in rec.launched] == [0, 2]
        assert rec.launched[1] == (2, (3,))
        assert sched.backfilled == 1

    def test_release_restarts_queued_jobs_in_order(self):
        rec = Recorder()
        sched = FleetScheduler(2, rec)
        sched.submit(Job(0, 2))
        sched.submit(Job(1, 1))
        sched.submit(Job(2, 1))
        assert len(rec.launched) == 1
        sched.release((0, 1))
        assert [j for j, _ in rec.launched] == [0, 1, 2]

    def test_idle_only_when_queue_and_cluster_drain(self):
        sched = FleetScheduler(2, Recorder())
        assert sched.idle
        sched.submit(Job(0, 2))
        assert not sched.idle
        sched.release((0, 1))
        assert sched.idle
