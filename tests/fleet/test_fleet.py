"""Fleet runs: end-to-end smoke, determinism across engines/dataplanes/pools,
row streaming, and the chaos integration smoke.

The determinism tests extend the differential pattern of
``tests/sim/test_engine.py`` to the fleet layer: one seeded fleet executed
under independently varied engine, dataplane and pool width must produce a
byte-identical :meth:`~repro.fleet.runner.FleetResult.identity`.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.experiments.parallel import SweepRunner
from repro.experiments.resultcache import ResultCache
from repro.fleet import (
    FleetJobResult,
    FleetRowSpec,
    FleetSpec,
    fleet_job_specs,
    resolve_fleet_config,
    run_fleet,
    run_fleet_chaos,
)

QUICK = 0.03125  # the CI quick scale used across the benchmark grids

SMOKE = FleetSpec(fleet_size=8, num_nodes=8, job_nodes=(1, 2), scale=QUICK)
AB = FleetSpec(fleet_size=64, scale=QUICK)


def identity_json(result) -> str:
    return json.dumps(result.identity(), sort_keys=True)


def _fleet_worker(spec, config):
    """Module-level (picklable) sweep worker without a row cache."""
    return run_fleet(spec, config=config)


class TestFleetSmoke:
    def test_small_fleet_runs_clean(self):
        result = run_fleet(SMOKE)
        assert [r.job_id for r in result.jobs] == list(range(8))
        assert result.summary["jobs"] == 8
        assert result.summary["failed"] == 0
        assert result.makespan > 0
        assert result.events > 0

    def test_jobs_cycle_the_spec_axes(self):
        jobs = fleet_job_specs(SMOKE)
        assert {j.benchmark for j in jobs} == {"ior", "coll_perf", "flash_io"}
        assert {j.cache_mode for j in jobs} == {"enabled", "disabled"}
        assert {j.nodes for j in jobs} == {1, 2}

    def test_per_job_accounting_is_populated(self):
        result = run_fleet(SMOKE)
        for row in result.jobs:
            assert row.bytes_app > 0
            assert row.pfs_bytes > 0  # every job's tag reached the servers
            assert row.solo_wall > 0
            assert row.stretch >= 1.0 or row.queue_wait == 0.0
        cached = [r for r in result.jobs if r.cache_mode == "enabled"]
        direct = [r for r in result.jobs if r.cache_mode == "disabled"]
        assert all(r.bytes_flushed > 0 for r in cached)
        assert all(r.bytes_direct > 0 for r in direct)

    def test_fifo_never_backfills(self):
        fifo = run_fleet(replace(SMOKE, backfill=False))
        assert fifo.backfilled == 0


class TestFleetDeterminism:
    """One 64-job fleet, byte-identical under every execution variation."""

    @pytest.fixture(scope="class")
    def reference(self):
        return identity_json(run_fleet(AB))  # slotted engine, bulk dataplane

    def test_heapq_engine_matches(self, reference, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "heapq")
        assert identity_json(run_fleet(AB)) == reference

    def test_chunked_dataplane_matches(self, reference):
        assert identity_json(run_fleet(AB, dataplane="chunked")) == reference

    def test_pool_matches_serial(self, reference):
        runner = SweepRunner(
            jobs=2,
            cache=ResultCache.disabled(),
            worker=_fleet_worker,
            resolver=resolve_fleet_config,
        )
        (result,) = runner.run([AB])
        assert identity_json(result) == reference


class TestRowStreaming:
    def test_rows_stream_to_the_cache_as_jobs_complete(self, tmp_path):
        cache = ResultCache(root=tmp_path, result_cls=FleetJobResult)
        result = run_fleet(SMOKE, row_cache=cache)
        assert result.streamed_rows == 8
        cfg = resolve_fleet_config(SMOKE)
        row = cache.get(FleetRowSpec(SMOKE, 3), cfg)
        assert isinstance(row, FleetJobResult)
        assert row.job_id == 3
        assert row.to_dict() == result.jobs[3].to_dict()


class TestFleetChaos:
    def test_chaos_smoke_holds_invariants(self):
        result = run_fleet_chaos(fleet_size=8, seed=0, scale=QUICK)
        assert result.ok, result.violations
        assert result.faults_injected >= 1
        assert sum(result.statuses.values()) == 8
