"""Arrival processes and fleet aggregate metrics."""

from __future__ import annotations

import pytest

from repro.fleet import arrival_times, percentile, summarize_jobs
from repro.fleet.runner import FleetJobResult
from repro.sim.rng import RngStreams


def make_row(job_id, status="ok", queue_wait=0.0, wall=1.0, stretch=1.0, bw=1.0):
    return FleetJobResult(
        job_id=job_id,
        benchmark="ior",
        cache_mode="enabled",
        nodes=1,
        num_ranks=2,
        placement=(0,),
        status=status,
        submit_time=0.0,
        start_time=queue_wait,
        end_time=queue_wait + wall,
        queue_wait=queue_wait,
        wall_time=wall,
        bandwidth=bw,
        solo_wall=wall,
        solo_bandwidth=1.0,
        stretch=stretch,
        degraded_bw=bw,
        bytes_app=0,
        bytes_flushed=0,
        bytes_direct=0,
        bytes_lost=0,
        fabric_bytes=0.0,
        pfs_rpcs=0,
        pfs_bytes=0,
    )


class TestArrivals:
    def test_poisson_is_seed_deterministic(self):
        a = arrival_times(RngStreams(7), 50, 0.01)
        b = arrival_times(RngStreams(7), 50, 0.01)
        assert a == b
        assert len(a) == 50
        assert all(t2 >= t1 for t1, t2 in zip(a, a[1:]))

    def test_different_seeds_differ(self):
        assert arrival_times(RngStreams(7), 10, 0.01) != arrival_times(
            RngStreams(8), 10, 0.01
        )

    def test_trace_gaps_cycle_and_accumulate(self):
        times = arrival_times(RngStreams(0), 5, 99.0, trace=(0.1, 0.2))
        assert times == pytest.approx([0.1, 0.3, 0.4, 0.6, 0.7])

    def test_negative_trace_gap_rejected(self):
        with pytest.raises(ValueError):
            arrival_times(RngStreams(0), 3, 1.0, trace=(0.1, -0.2))

    def test_nonpositive_mean_rejected(self):
        with pytest.raises(ValueError):
            arrival_times(RngStreams(0), 3, 0.0)


class TestPercentile:
    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 95) == 40.0
        assert percentile(values, 1) == 10.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 99) == 3.0


class TestSummary:
    def test_empty_fleet_yields_zeroes(self):
        s = summarize_jobs([])
        assert s["jobs"] == 0
        assert s["wall_p99"] == 0.0

    def test_failed_jobs_counted_but_excluded_from_walls(self):
        rows = [
            make_row(0, wall=1.0),
            make_row(1, wall=3.0),
            make_row(2, status="fault", queue_wait=5.0, wall=100.0),
        ]
        s = summarize_jobs(rows)
        assert s["jobs"] == 3
        assert s["ok"] == 2
        assert s["failed"] == 1
        assert s["wall_p99"] == 3.0  # the failed job's wall is excluded
        # ...but every job (failed or not) waits in the queue.
        assert s["queue_wait_max"] == 5.0
