"""Differential tests for the array fair-share kernel (``REPRO_FABRIC=array``).

:class:`~repro.net.fabric_array.ArrayFabric` must be *byte-identical* to
both the incremental allocator and the naive full-recompute reference:
same rates, same completion timestamps, same wake schedule, under
arrivals, departures, bundle growth, mid-transfer capacity changes, and
500-step randomized churn.  The converged-rate memoization must be a pure
lookup — hits may never change a single float.
"""

import random

import pytest

from repro.net.fabric import Fabric, NaiveFabric
from repro.net.fabric_array import ArrayFabric
from repro.sim.core import SlottedSimulator, Simulator

from tests.net.test_fabric_incremental import BW, LAT, NODES, churn


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_randomized_differential_three_way(seed):
    """500-step churn: array vs incremental vs naive, bit-for-bit."""
    arr_done, arr_rates, arr_end = churn(ArrayFabric, seed)
    inc_done, inc_rates, inc_end = churn(Fabric, seed)
    ref_done, ref_rates, ref_end = churn(NaiveFabric, seed)
    # Completion timestamps must match exactly (byte-identical clock).
    assert arr_end == inc_end == ref_end
    assert arr_done == inc_done == ref_done
    # Sampled rate maps: array vs incremental are *exactly* equal (same
    # component, same op order); vs naive only approx (different component
    # decomposition accumulates different-but-negligible float drift).
    assert len(arr_rates) == len(inc_rates) == len(ref_rates)
    for got, want in zip(arr_rates, inc_rates):
        assert got == want
    for got, want in zip(arr_rates, ref_rates):
        assert got.keys() == want.keys()
        for fid in want:
            assert got[fid] == pytest.approx(want[fid], rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("seed", [7, 8])
def test_wake_schedule_identical_to_incremental(seed):
    """Same churn ⇒ same number of armed wakes and recompute structure."""
    results = {}
    for cls in (ArrayFabric, Fabric):
        rng = random.Random(seed)
        sim = Simulator()
        fabric = cls(sim, num_nodes=NODES, nic_bw=BW, latency=LAT)
        for _ in range(200):
            op = rng.random()
            if op < 0.6:
                fabric.start_flow(rng.randrange(NODES), rng.randrange(NODES), 5000)
            elif op < 0.7:
                fabric.set_node_bw_factor(rng.randrange(NODES), rng.uniform(0.3, 1.4))
            else:
                sim.run(until=sim.now + rng.uniform(0.0, 2.0))
        sim.run()
        results[cls.kind] = (
            sim.now,
            fabric.wake_events,
            fabric.recomputes,
            fabric.recompute_flows,
            fabric.recomputes_skipped,
            fabric.batched_starts,
        )
    assert results["array"] == results["incremental"]


def _drive_pair(scenario, ref_cls=Fabric, sim_cls=Simulator):
    out = []
    for cls in (ArrayFabric, ref_cls):
        sim = sim_cls()
        fabric = cls(sim, num_nodes=6, nic_bw=BW, latency=LAT)
        out.append(scenario(sim, fabric))
    return out


def test_grow_flow_bundles_identical():
    """Weighted bundles (grow_flow) share and finish identically."""

    def scenario(sim, fabric):
        times = {}
        ev = fabric.start_flow(0, 1, 1000)
        for _ in range(3):
            assert fabric.grow_flow(ev, 1000)
        assert not fabric.grow_flow(ev, 999)  # different member size
        other = fabric.start_flow(0, 2, 1000)
        for i, e in enumerate((ev, other)):
            e.callbacks.append(lambda _e, i=i: times.__setitem__(i, sim.now))
        sim.run()
        assert fabric.active_flows == 0
        assert not fabric.grow_flow(ev, 1000)  # inactive flow
        return times

    arr, inc = _drive_pair(scenario)
    assert arr == inc


def test_zero_byte_flows_complete_after_latency():
    def scenario(sim, fabric):
        times = {}
        ev = fabric.start_flow(0, 1, 0)
        ev.callbacks.append(lambda _e: times.__setitem__("zero", sim.now))
        sim.run()
        return times

    arr, inc = _drive_pair(scenario)
    assert arr == inc == {"zero": LAT}


def test_mid_flight_bw_factor_identical():
    def scenario(sim, fabric):
        times = {}
        for i in range(4):
            ev = fabric.start_flow(0, 1 + i % 2, 10_000)
            ev.callbacks.append(lambda _e, i=i: times.__setitem__(i, sim.now))
        sim.run(until=2.0)
        fabric.set_node_bw_factor(0, 0.25)
        sim.run(until=6.0)
        fabric.set_node_bw_factor(0, 1.25)
        sim.run()
        return times

    arr, inc = _drive_pair(scenario)
    assert arr == inc
    arr_naive, ref = _drive_pair(scenario, ref_cls=NaiveFabric)
    assert arr_naive == ref


def test_array_on_slotted_engine_matches_heapq():
    """The pooled-callable flush/wake path is engine-independent."""

    def scenario(sim, fabric):
        times = {}
        for i in range(8):
            ev = fabric.start_flow(i % 3, (i + 1) % 3, 2500 * (1 + i % 2))
            ev.callbacks.append(lambda _e, i=i: times.__setitem__(i, sim.now))
        sim.run(until=1.0)
        fabric.set_node_bw_factor(1, 0.5)
        sim.run()
        return times

    slotted = _drive_pair(scenario, sim_cls=SlottedSimulator)
    heapq_ = _drive_pair(scenario, sim_cls=Simulator)
    assert slotted[0] == slotted[1]  # array == incremental on slotted
    assert slotted[0] == heapq_[0]  # array: slotted == heapq


def test_rate_cache_hits_on_repeated_shapes():
    """Repeated same-shape waves become cache hits; rates stay identical."""
    sim = Simulator()
    fabric = ArrayFabric(sim, num_nodes=4, nic_bw=BW, latency=LAT)
    reference = None
    for _wave in range(5):
        for i in range(6):
            fabric.start_flow(0, 1 + i % 3, 750)
        rates = sorted(fabric.flow_rates().values())
        if reference is None:
            reference = rates
        else:
            assert rates == reference
        sim.run()
        assert fabric.active_flows == 0
    assert fabric.rate_cache_hits > 0
    assert fabric.rate_cache_misses >= 1
    # Every fill either hit or missed.
    assert fabric.rate_cache_hits + fabric.rate_cache_misses > 5


def test_rate_cache_distinguishes_capacity_changes():
    """A capacity change must change the signature, never reuse stale rates."""
    sim = Simulator()
    fabric = ArrayFabric(sim, num_nodes=4, nic_bw=BW, latency=LAT)
    fabric.start_flow(0, 1, 1000)
    fabric.start_flow(0, 1, 1000)
    first = fabric.flow_rates()
    assert set(first.values()) == {BW / 2}
    sim.run()
    fabric.set_node_bw_factor(0, 0.5)
    fabric.start_flow(0, 1, 1000)
    fabric.start_flow(0, 1, 1000)
    second = fabric.flow_rates()
    assert set(second.values()) == {BW / 4}
    sim.run()


def test_rate_cache_bounded():
    from repro.net import fabric_array

    sim = Simulator()
    fabric = ArrayFabric(sim, num_nodes=4, nic_bw=BW, latency=LAT)
    for i in range(200):
        # A new capacity each wave forces a new signature.  Two flows per
        # wave: single-flow components bypass the signature cache entirely.
        fabric.set_node_bw_factor(0, 1.0 + (i + 1) / 1000.0)
        fabric.start_flow(0, 1, 100)
        fabric.start_flow(0, 1, 100)
        fabric.flow_rates()
        sim.run()
    assert len(fabric._rate_cache) <= fabric_array._RATE_CACHE_MAX
    assert fabric.rate_cache_misses >= 200


def test_single_flow_fast_path_bypasses_cache():
    """One-flow components solve in closed form without touching the cache."""
    sim = Simulator()
    fabric = ArrayFabric(sim, num_nodes=4, nic_bw=BW, latency=LAT)
    for i in range(10):
        fabric.start_flow(0, 1 + i % 3, 500)
        rates = list(fabric.flow_rates().values())
        assert rates == [BW]
        sim.run()
        assert fabric.active_flows == 0
    assert fabric.rate_cache_hits == 0
    assert fabric.rate_cache_misses == 0
    assert len(fabric._rate_cache) == 0
