"""Differential and regression tests for the incremental fabric allocator.

The incremental allocator must be *byte-identical* to the naive
full-recompute reference (``REPRO_FABRIC=naive``): same rates, same
completion timestamps, under arrivals, departures, mid-transfer capacity
changes, and randomized churn.  These tests drive both allocators through
identical seeded schedules and compare.
"""

import random

import pytest

from repro.net.fabric import FABRIC_KINDS, Fabric, NaiveFabric, create_fabric
from repro.net.fabric_array import ArrayFabric
from repro.sim.core import SimError, Simulator

BW = 1000.0
LAT = 0.0005
NODES = 6


def churn(fabric_cls, seed, steps=500):
    """Drive one allocator through a seeded random schedule of flow churn.

    Mixes flow starts (with occasional shared auxiliary links), capacity
    changes mid-transfer, rate samples, and clock advances; returns
    (completion times, sampled rate maps, final sim time).
    """
    rng = random.Random(seed)
    sim = Simulator()
    fabric = fabric_cls(sim, num_nodes=NODES, nic_bw=BW, latency=LAT)
    aux = [fabric.make_link(f"aux{i}", BW / 2) for i in range(2)]
    completions: dict[int, float] = {}
    samples: list[dict[int, float]] = []
    started = 0
    for _ in range(steps):
        op = rng.random()
        if op < 0.55:
            src = rng.randrange(NODES)
            dst = rng.randrange(NODES)
            nbytes = rng.choice([1, 7, 100, 1000, 4096, 100000]) * rng.uniform(0.5, 1.5)
            extra = (aux[rng.randrange(2)],) if rng.random() < 0.3 else ()
            ev = fabric.start_flow(src, dst, nbytes, extra_links=extra)
            idx = started
            started += 1
            ev.callbacks.append(lambda e, i=idx: completions.__setitem__(i, sim.now))
        elif op < 0.70:
            fabric.set_node_bw_factor(rng.randrange(NODES), rng.uniform(0.2, 1.5))
        elif op < 0.80:
            samples.append(fabric.flow_rates())
        else:
            sim.run(until=sim.now + rng.uniform(0.0, 0.5))
    sim.run()
    assert fabric.active_flows == 0
    return completions, samples, sim.now


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_randomized_differential_naive_vs_incremental(seed):
    inc_done, inc_rates, inc_end = churn(Fabric, seed)
    ref_done, ref_rates, ref_end = churn(NaiveFabric, seed)
    # Completion timestamps must match exactly (byte-identical clock).
    assert inc_end == ref_end
    assert inc_done == ref_done
    # Sampled rate allocations agree to 1e-9 at every sample point.
    assert len(inc_rates) == len(ref_rates)
    for got, want in zip(inc_rates, ref_rates):
        assert got.keys() == want.keys()
        for fid in want:
            assert got[fid] == pytest.approx(want[fid], rel=1e-9, abs=1e-9)


def _run_both(scenario):
    """Run a scenario against both allocators, return both observations."""
    out = []
    for cls in (Fabric, NaiveFabric):
        sim = Simulator()
        fabric = cls(sim, num_nodes=4, nic_bw=BW, latency=LAT)
        out.append(scenario(sim, fabric))
    return out


def test_simultaneous_same_timestamp_completions():
    """Equal flows over the same route must finish at one identical instant."""

    def scenario(sim, fabric):
        times = {}
        done = [fabric.start_flow(0, 1, 750) for _ in range(5)]
        done.append(fabric.start_flow(2, 3, 750 * 5))  # disjoint, same finish
        for i, ev in enumerate(done):
            ev.callbacks.append(lambda e, i=i: times.__setitem__(i, sim.now))
        sim.run()
        assert fabric.active_flows == 0
        return times

    inc, ref = _run_both(scenario)
    assert inc == ref
    # 5 flows share node0.out at BW/5; the disjoint one moves 5x the bytes
    # at full BW: all six land on the same timestamp.
    assert len(set(inc.values())) == 1
    assert inc[0] == pytest.approx(750 * 5 / BW + LAT)


def test_set_node_bw_factor_mid_transfer():
    """A capacity change halfway through re-rates in-flight flows exactly."""

    def scenario(sim, fabric):
        ev = fabric.start_flow(0, 1, 1000)
        times = {}
        ev.callbacks.append(lambda e: times.__setitem__("done", sim.now))
        sim.run(until=0.5)  # 500 bytes moved at full BW
        fabric.set_node_bw_factor(1, 0.25)  # receiver drops to BW/4
        sim.run()
        return times["done"]

    inc, ref = _run_both(scenario)
    assert inc == ref
    # Remaining 500 bytes at 250 B/s -> 2 s more.
    assert inc == pytest.approx(0.5 + 500 / (BW / 4) + LAT)


def test_degrade_then_recover_mid_transfer():
    def scenario(sim, fabric):
        ev = fabric.start_flow(0, 1, 1000)
        times = {}
        ev.callbacks.append(lambda e: times.__setitem__("done", sim.now))
        sim.run(until=0.25)
        fabric.set_node_bw_factor(0, 0.5)
        sim.run(until=0.75)
        fabric.set_node_bw_factor(0, 1.0)
        sim.run()
        return times["done"]

    inc, ref = _run_both(scenario)
    assert inc == ref
    # 250 bytes at BW, 250 at BW/2, remaining 500 at BW again.
    assert inc == pytest.approx(0.25 + 0.5 + 0.5 + LAT)


def test_coalesced_same_timestamp_starts_single_recompute():
    """A burst of same-instant starts costs one filling pass, not N."""
    sim = Simulator()
    fabric = Fabric(sim, num_nodes=4, nic_bw=BW, latency=LAT)
    for _ in range(20):
        fabric.start_flow(0, 1, 500)
    sim.run()
    assert fabric.active_flows == 0
    assert fabric.batched_starts == 19  # 19 starts joined the pending flush
    # One coalesced recompute for the burst, then one per completion wave;
    # all 20 finish together, so that second wave is also a single event.
    assert fabric.recomputes <= 2

    ref_sim = Simulator()
    ref = NaiveFabric(ref_sim, num_nodes=4, nic_bw=BW, latency=LAT)
    for _ in range(20):
        ref.start_flow(0, 1, 500)
    ref_sim.run()
    # One recompute per start; the completion wave empties the fabric, so
    # the naive departure path (which only re-rates survivors) adds none.
    assert ref.recomputes == 20
    assert ref_sim.now == sim.now


def test_disjoint_components_skip_recompute():
    """Changes in one component never re-rate flows of another."""
    sim = Simulator()
    fabric = Fabric(sim, num_nodes=4, nic_bw=BW, latency=LAT)
    fabric.start_flow(0, 1, 10_000)
    sim.run(until=0.001)
    fabric.start_flow(2, 3, 100)  # disjoint component
    sim.run(until=0.002)
    # Each recompute touched exactly its own single-flow component.
    assert fabric.recomputes == 2
    assert fabric.recompute_flows == 2
    sim.run()
    # The short flow's departure left its links empty: provably no share
    # can change, so the departure recompute is skipped outright.
    assert fabric.recomputes_skipped >= 1
    assert fabric.active_flows == 0


def test_wake_event_churn_regression():
    """The fixed allocator arms no wake when nothing can complete.

    The naive reference preserves the original behaviour — a fresh wake
    event allocated on *every* change — so the counters document exactly
    the churn the fix removes.
    """
    sim = Simulator()
    fabric = Fabric(sim, num_nodes=4, nic_bw=BW, latency=LAT)
    dead = fabric.make_link("dead", 1e-15)  # share below _EPS: never completes
    for _ in range(10):
        fabric.start_flow(0, 1, 100, extra_links=(dead,))
    sim.run()
    assert fabric.wake_events == 0  # soonest == inf: nothing armed

    ref_sim = Simulator()
    ref = NaiveFabric(ref_sim, num_nodes=4, nic_bw=BW, latency=LAT)
    dead = ref.make_link("dead", 1e-15)
    for _ in range(10):
        ref.start_flow(0, 1, 100, extra_links=(dead,))
    ref_sim.run()
    assert ref.wake_events == 10  # one allocation per change, all useless


def test_wake_events_far_fewer_under_batching():
    sim = Simulator()
    fabric = Fabric(sim, num_nodes=4, nic_bw=BW, latency=LAT)
    for i in range(30):
        fabric.start_flow(i % 4, (i + 1) % 4, 400)
    sim.run()
    ref_sim = Simulator()
    ref = NaiveFabric(ref_sim, num_nodes=4, nic_bw=BW, latency=LAT)
    for i in range(30):
        ref.start_flow(i % 4, (i + 1) % 4, 400)
    ref_sim.run()
    assert ref_sim.now == sim.now
    assert fabric.wake_events < ref.wake_events


def test_create_fabric_kind_selection(monkeypatch):
    sim = Simulator()
    assert type(create_fabric(sim, 2, BW, LAT, kind="naive")) is NaiveFabric
    assert type(create_fabric(sim, 2, BW, LAT, kind="incremental")) is Fabric
    monkeypatch.setenv("REPRO_FABRIC", "naive")
    assert type(create_fabric(sim, 2, BW, LAT)) is NaiveFabric
    monkeypatch.delenv("REPRO_FABRIC")
    assert type(create_fabric(sim, 2, BW, LAT)) is ArrayFabric
    with pytest.raises(SimError):
        create_fabric(sim, 2, BW, LAT, kind="bogus")
    assert set(FABRIC_KINDS) == {"array", "incremental", "naive"}


def test_flow_rates_flushes_pending_batch():
    """Rates queried in the same instant as a start must include it."""
    sim = Simulator()
    fabric = Fabric(sim, num_nodes=4, nic_bw=BW, latency=LAT)
    fabric.start_flow(0, 1, 500)
    fabric.start_flow(0, 2, 500)
    rates = fabric.flow_rates()  # before the coalescing flush event fired
    assert rates == {0: pytest.approx(BW / 2), 1: pytest.approx(BW / 2)}
    sim.run()
    assert fabric.active_flows == 0
