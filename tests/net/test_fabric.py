import pytest

from repro.net.fabric import Fabric
from repro.sim.core import Simulator

BW = 1000.0  # bytes/sec — round numbers make assertions exact
LAT = 0.001


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def fabric(sim):
    return Fabric(sim, num_nodes=4, nic_bw=BW, latency=LAT)


def run_transfer(sim, fabric, flows):
    """Start flows [(src, dst, nbytes)], return completion times."""
    done = [fabric.start_flow(*f) for f in flows]
    times = {}
    for i, ev in enumerate(done):
        ev.callbacks.append(lambda e, i=i: times.__setitem__(i, sim.now))
    sim.run()
    return times


class TestSingleFlow:
    def test_duration_is_latency_plus_transfer(self, sim, fabric):
        times = run_transfer(sim, fabric, [(0, 1, 500)])
        assert times[0] == pytest.approx(500 / BW + LAT)

    def test_zero_bytes_is_latency_only(self, sim, fabric):
        times = run_transfer(sim, fabric, [(0, 1, 0)])
        assert times[0] == pytest.approx(LAT)

    def test_loopback_faster_than_network(self, sim, fabric):
        t_local = run_transfer(sim, fabric, [(0, 0, 1000)])[0]
        sim2 = Simulator()
        f2 = Fabric(sim2, 4, BW, LAT)
        t_remote = run_transfer(sim2, f2, [(0, 1, 1000)])[0]
        assert t_local < t_remote


class TestFairSharing:
    def test_two_flows_same_link_half_rate(self, sim, fabric):
        times = run_transfer(sim, fabric, [(0, 1, 500), (0, 2, 500)])
        # Both share node 0's out link: each gets BW/2.
        assert times[0] == pytest.approx(1000 / BW + LAT)
        assert times[1] == pytest.approx(1000 / BW + LAT)

    def test_disjoint_flows_full_rate(self, sim, fabric):
        times = run_transfer(sim, fabric, [(0, 1, 500), (2, 3, 500)])
        assert times[0] == pytest.approx(500 / BW + LAT)
        assert times[1] == pytest.approx(500 / BW + LAT)

    def test_incast_shares_receiver(self, sim, fabric):
        # 3 senders into node 3: receiver NIC is the bottleneck at BW/3.
        times = run_transfer(sim, fabric, [(0, 3, 300), (1, 3, 300), (2, 3, 300)])
        for i in range(3):
            assert times[i] == pytest.approx(900 / BW + LAT)

    def test_rate_increases_after_completion(self, sim, fabric):
        # Short flow shares then finishes; long flow speeds up.
        times = run_transfer(sim, fabric, [(0, 1, 100), (0, 2, 1000)])
        # Phase 1: both at 500 B/s until short done at t=0.2 (100/500).
        # Phase 2: long has 900 left at 1000 B/s -> +0.9 -> 1.1 total.
        assert times[0] == pytest.approx(0.2 + LAT)
        assert times[1] == pytest.approx(1.1 + LAT)

    def test_max_min_with_unequal_bottlenecks(self, sim, fabric):
        # f1: 0->1, f2: 0->1 as well plus f3: 2->1.  Receiver link node1
        # carries 3 flows (333 each); node0 out carries 2 (<=500 each) so
        # receiver is the bottleneck for all three.
        times = run_transfer(sim, fabric, [(0, 1, 333), (0, 1, 333), (2, 1, 333)])
        for i in range(3):
            assert times[i] == pytest.approx(333 / (BW / 3) + LAT, rel=1e-3)


class TestCustomLinks:
    def test_extra_link_caps_rate(self, sim, fabric):
        channel = fabric.make_link("chan", 100.0)
        done = fabric.start_flow(0, 1, 100, extra_links=(channel,))
        sim.run()
        assert sim.now == pytest.approx(100 / 100.0 + LAT)

    def test_shared_extra_link(self, sim, fabric):
        ingest = fabric.make_link("ingest", 200.0)
        d1 = fabric.start_flow(0, 2, 100, extra_links=(ingest,))
        d2 = fabric.start_flow(1, 2, 100, extra_links=(ingest,))
        sim.run()
        # Two flows share the 200 B/s ingest: 100 bytes at 100 B/s each.
        assert sim.now == pytest.approx(1.0 + LAT)


class TestAccounting:
    def test_bytes_moved(self, sim, fabric):
        run_transfer(sim, fabric, [(0, 1, 500), (1, 2, 250)])
        assert fabric.bytes_moved == 750

    def test_flows_drain(self, sim, fabric):
        run_transfer(sim, fabric, [(0, 1, 500)])
        assert fabric.active_flows == 0

    def test_many_small_flows_terminate(self, sim, fabric):
        # Regression: accumulated FP error in water-filling must not stall
        # the clock (the fabric-wake livelock).
        flows = [(i % 4, (i + 1) % 4, 7) for i in range(64)]
        run_transfer(sim, fabric, flows)
        assert fabric.active_flows == 0
        assert sim.now < 10.0
