"""Property-based checks of the max-min fair fabric."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.fabric import Fabric
from repro.sim.core import Simulator

BW = 1000.0
LAT = 0.0  # keep completion-time arithmetic exact

flows_strategy = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(1, 5000)),
    min_size=1,
    max_size=12,
)


@settings(max_examples=80, deadline=None)
@given(flows_strategy)
def test_all_flows_complete_and_respect_capacity(flows):
    sim = Simulator()
    fabric = Fabric(sim, num_nodes=4, nic_bw=BW, latency=LAT)
    done = [fabric.start_flow(s, d, n) for s, d, n in flows]
    times = {}
    for i, ev in enumerate(done):
        ev.callbacks.append(lambda e, i=i: times.__setitem__(i, sim.now))
    sim.run()
    assert fabric.active_flows == 0
    assert len(times) == len(flows)

    # Lower bound per flow: its own bytes at full link speed (loopback is
    # faster than the NIC, so use the applicable capacity).
    for i, (s, d, n) in enumerate(flows):
        cap = fabric.loopback_bw if s == d else BW
        assert times[i] >= n / cap - 1e-9

    # Aggregate lower bound per NIC direction: a node cannot emit (or
    # absorb) faster than its NIC.
    makespan = max(times.values())
    for node in range(4):
        out_bytes = sum(n for s, d, n in flows if s == node and d != node)
        in_bytes = sum(n for s, d, n in flows if d == node and s != node)
        assert makespan >= out_bytes / BW - 1e-9
        assert makespan >= in_bytes / BW - 1e-9


@settings(max_examples=50, deadline=None)
@given(flows_strategy)
def test_byte_accounting(flows):
    sim = Simulator()
    fabric = Fabric(sim, num_nodes=4, nic_bw=BW, latency=LAT)
    for s, d, n in flows:
        fabric.start_flow(s, d, n)
    sim.run()
    assert fabric.bytes_moved == sum(n for _, _, n in flows)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(1, 2000), min_size=2, max_size=8))
def test_identical_flows_finish_together(sizes):
    """Equal flows over the same links share fairly: same size -> same time."""
    sim = Simulator()
    fabric = Fabric(sim, num_nodes=4, nic_bw=BW, latency=LAT)
    n = max(sizes)
    done = [fabric.start_flow(0, 1, n) for _ in range(3)]
    times = {}
    for i, ev in enumerate(done):
        ev.callbacks.append(lambda e, i=i: times.__setitem__(i, sim.now))
    sim.run()
    assert max(times.values()) - min(times.values()) < 1e-9
