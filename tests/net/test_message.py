import pytest

from repro.net.fabric import Fabric
from repro.net.message import ANY_SOURCE, ANY_TAG, Transport
from repro.sim.core import Simulator


@pytest.fixture
def setup():
    sim = Simulator()
    fabric = Fabric(sim, num_nodes=2, nic_bw=1e6, latency=1e-4)
    transport = Transport(sim, fabric, rank_to_node=[0, 0, 1, 1], per_message_overhead=1e-6)
    return sim, transport


class TestMatching:
    def test_send_recv(self, setup):
        sim, tp = setup

        def receiver():
            msg = yield tp.post_recv(2, source=0, tag=5)
            return (msg.payload, msg.source, msg.tag)

        def sender():
            yield tp.send(0, 2, 5, "hello", 100)

        p = sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert p.value == ("hello", 0, 5)

    def test_unexpected_message_queued(self, setup):
        sim, tp = setup

        def sender():
            yield tp.send(0, 2, 9, "early", 10)

        def receiver():
            yield sim.timeout(1.0)  # recv posted long after arrival
            msg = yield tp.post_recv(2, source=0, tag=9)
            return msg.payload

        sim.process(sender())
        p = sim.process(receiver())
        sim.run()
        assert p.value == "early"

    def test_wildcard_source(self, setup):
        sim, tp = setup

        def receiver():
            msg = yield tp.post_recv(3, source=ANY_SOURCE, tag=1)
            return msg.source

        def sender():
            yield tp.send(1, 3, 1, "x", 10)

        p = sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert p.value == 1

    def test_wildcard_tag(self, setup):
        sim, tp = setup

        def receiver():
            msg = yield tp.post_recv(2, source=0, tag=ANY_TAG)
            return msg.tag

        def sender():
            yield tp.send(0, 2, 77, "x", 10)

        p = sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert p.value == 77

    def test_tag_filtering(self, setup):
        sim, tp = setup

        def receiver():
            msg_b = yield tp.post_recv(2, source=0, tag=2)
            msg_a = yield tp.post_recv(2, source=0, tag=1)
            return (msg_b.payload, msg_a.payload)

        def sender():
            yield tp.send(0, 2, 1, "a", 10)
            yield tp.send(0, 2, 2, "b", 10)

        p = sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert p.value == ("b", "a")

    def test_non_overtaking_same_pair_same_tag(self, setup):
        sim, tp = setup
        got = []

        def receiver():
            for _ in range(5):
                msg = yield tp.post_recv(2, source=0, tag=0)
                got.append(msg.payload)

        def sender():
            for i in range(5):
                yield tp.send(0, 2, 0, i, 1000)

        sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_intra_node_message(self, setup):
        sim, tp = setup

        def receiver():
            msg = yield tp.post_recv(1, source=0, tag=0)
            return msg.payload

        def sender():
            yield tp.send(0, 1, 0, "local", 10)

        p = sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert p.value == "local"

    def test_messages_sent_counter(self, setup):
        sim, tp = setup

        def sender():
            yield tp.send(0, 2, 0, "x", 10)
            yield tp.send(0, 3, 0, "y", 10)

        sim.process(sender())
        sim.process(iter_recv(tp, sim))
        sim.run()
        assert tp.messages_sent == 2


def iter_recv(tp, sim):
    yield tp.post_recv(2)
    yield tp.post_recv(3)
