import numpy as np
import pytest

from repro.config import small_testbed
from repro.hw.node import ComputeNode
from repro.localfs.ext4 import ENOSPC, LocalFileSystem
from repro.sim.core import Simulator
from repro.units import GiB, KiB, MiB


def make_fs(supports_fallocate=True, ssd_capacity=None):
    sim = Simulator()
    cfg = small_testbed()
    if ssd_capacity is not None:
        from dataclasses import replace

        cfg = cfg.scaled(ssd=replace(cfg.ssd, capacity=ssd_capacity))
    node = ComputeNode(sim, 0, cfg)
    return sim, LocalFileSystem(node, supports_fallocate=supports_fallocate)


def drive(sim, gen):
    return sim.run(until=sim.process(gen))


class TestNamespace:
    def test_open_create(self):
        _, fs = make_fs()
        f = fs.open("/scratch/a")
        assert fs.exists("/scratch/a")
        assert f.size == 0

    def test_open_missing_without_create(self):
        _, fs = make_fs()
        with pytest.raises(FileNotFoundError):
            fs.open("/scratch/nope", create=False)

    def test_unlink_reclaims_space(self):
        sim, fs = make_fs()
        f = fs.open("/scratch/a")
        drive(sim, fs.write(f, 0, MiB))
        used = fs.used
        assert used == MiB
        fs.close(f)
        fs.unlink("/scratch/a")
        assert fs.used == 0

    def test_unlink_while_open_defers_reclaim(self):
        sim, fs = make_fs()
        f = fs.open("/scratch/a")
        drive(sim, fs.write(f, 0, MiB))
        fs.unlink("/scratch/a")
        assert fs.used == MiB  # still open
        fs.close(f)
        assert fs.used == 0


class TestAllocation:
    def test_fallocate_fast(self):
        sim, fs = make_fs(supports_fallocate=True)
        f = fs.open("/scratch/a")
        drive(sim, fs.fallocate(f, 0, 16 * MiB))
        assert sim.now < 1e-3  # basically instant
        assert f.allocated == 16 * MiB

    def test_fallocate_fallback_writes_zeros(self):
        sim, fs = make_fs(supports_fallocate=False)
        f = fs.open("/scratch/a")
        drive(sim, fs.fallocate(f, 0, 16 * MiB))
        # footnote 2: physically writes zeros, at device speed
        assert sim.now >= 16 * MiB / fs.node.config.ssd.write_bw * 0.9

    def test_fallocate_idempotent(self):
        sim, fs = make_fs()
        f = fs.open("/scratch/a")
        drive(sim, fs.fallocate(f, 0, MiB))
        drive(sim, fs.fallocate(f, 0, MiB))
        assert f.allocated == MiB
        assert fs.used == MiB

    def test_enospc(self):
        sim, fs = make_fs(ssd_capacity=10 * MiB)
        f = fs.open("/scratch/a")
        with pytest.raises(ENOSPC):
            drive(sim, fs.write(f, 0, 11 * MiB))


class TestSparseAccounting:
    def test_sparse_offsets_charge_extent_bytes_only(self):
        sim, fs = make_fs()
        f = fs.open("/scratch/a")
        drive(sim, fs.write(f, 5 * GiB, MiB))  # cache files use global offsets
        assert fs.used == MiB
        assert f.size == 5 * GiB + MiB

    def test_overlapping_writes_charged_once(self):
        sim, fs = make_fs()
        f = fs.open("/scratch/a")
        drive(sim, fs.write(f, 0, MiB))
        drive(sim, fs.write(f, 512 * KiB, MiB))
        assert fs.used == MiB + 512 * KiB


class TestDataPath:
    def test_write_read_roundtrip(self):
        sim, fs = make_fs()
        f = fs.open("/scratch/a")
        data = np.arange(256, dtype=np.uint8)

        def proc():
            yield from fs.write(f, 1000, 256, data)
            got = yield from fs.read(f, 1000, 256)
            return got

        got = drive(sim, proc())
        assert np.array_equal(got, data)

    def test_partial_read_with_hole(self):
        sim, fs = make_fs()
        f = fs.open("/scratch/a")
        data = np.full(100, 7, dtype=np.uint8)

        def proc():
            yield from fs.write(f, 100, 100, data)
            got = yield from fs.read(f, 50, 200)
            return got

        got = drive(sim, proc())
        assert np.all(got[50:150] == 7)
        assert np.all(got[:50] == 0)

    def test_virtual_write_returns_none_on_read(self):
        sim, fs = make_fs()
        f = fs.open("/scratch/a")

        def proc():
            yield from fs.write(f, 0, 1024)  # no payload
            got = yield from fs.read(f, 0, 1024)
            return got

        assert drive(sim, proc()) is None

    def test_fsync_then_reads_hit_device(self):
        sim, fs = make_fs()
        f = fs.open("/scratch/a")

        def proc():
            yield from fs.write(f, 0, 8 * MiB)
            yield from fs.fsync(f)
            t0 = sim.now
            yield from fs.read(f, 0, 8 * MiB)
            return sim.now - t0

        dt = drive(sim, proc())
        # After fsync nothing is dirty: the read is device-speed.
        assert dt >= 8 * MiB / fs.node.config.ssd.read_bw * 0.9

    def test_data_image(self):
        sim, fs = make_fs()
        f = fs.open("/scratch/a")
        drive(sim, fs.write(f, 4, 4, np.array([1, 2, 3, 4], dtype=np.uint8)))
        img = f.data_image()
        assert list(img) == [0, 0, 0, 0, 1, 2, 3, 4]
