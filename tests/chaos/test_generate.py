"""Schedule generator: determinism, survivability bounds, validation."""

import pytest

from repro.chaos import ChaosConfig, generate_schedule
from repro.faults.spec import FaultSchedule, FaultSpec

CFG = ChaosConfig()


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        assert generate_schedule(CFG, 7) == generate_schedule(CFG, 7)

    def test_seeds_draw_different_schedules(self):
        schedules = {generate_schedule(CFG, s) for s in range(20)}
        assert len(schedules) > 10  # collisions allowed, monoculture is not

    def test_schedule_is_serializable_roundtrip(self):
        schedule = generate_schedule(CFG, 3)
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule


class TestBounds:
    @pytest.mark.parametrize("seed", range(50))
    def test_draws_stay_survivable(self, seed):
        schedule = generate_schedule(CFG, seed)
        assert 1 <= len(schedule.faults) <= CFG.max_faults + 2  # + crash + cascade
        lost = set()
        for f in schedule.faults:
            if f.kind == "aggregator_crash":
                # Crashes are event-anchored, never clock-driven: the
                # reference checksums stay a valid oracle only because every
                # application write has been acknowledged before the crash.
                assert f.on_event in (f"write_done:{CFG.num_files - 1}", "recovery_replay")
                assert f.delay > 0
                assert f.target < CFG.num_ranks
                continue
            assert CFG.start_min <= f.start < CFG.horizon
            if f.kind == "ssd_device_loss":
                assert f.target not in lost  # validate() would reject a dup
                lost.add(f.target)
                continue
            assert CFG.min_window <= f.duration <= CFG.max_window
            if f.kind == "ssd_io_error":
                assert CFG.min_error_rate <= f.rate <= CFG.max_error_rate
            if f.kind == "link_degrade":
                assert 0.2 <= f.factor <= 0.9
        if schedule.sync_rpc_timeout:
            assert any(f.kind == "server_stall" for f in schedule.faults)

    def test_cascade_only_follows_a_primary_crash(self):
        for seed in range(50):
            crashes = generate_schedule(CFG, seed).of_kind("aggregator_crash")
            if any(c.on_event == "recovery_replay" for c in crashes):
                assert any(c.on_event.startswith("write_done:") for c in crashes)


class TestScheduleValidation:
    def test_node_target_out_of_range(self):
        bad = FaultSchedule.of(FaultSpec("ssd_io_error", target=9, start=0.01))
        with pytest.raises(ValueError, match="targets node 9"):
            bad.validate(num_nodes=4)

    def test_server_target_out_of_range(self):
        bad = FaultSchedule.of(FaultSpec("server_stall", target=4, start=0.01))
        with pytest.raises(ValueError, match="targets server 4"):
            bad.validate(num_servers=4)

    def test_crash_rank_out_of_range(self):
        bad = FaultSchedule.of(
            FaultSpec("aggregator_crash", target=8, on_event="write_done:0")
        )
        with pytest.raises(ValueError, match="names rank 8"):
            bad.validate(num_ranks=8)

    def test_duplicate_device_loss_rejected(self):
        bad = FaultSchedule.of(
            FaultSpec("ssd_device_loss", target=1, start=0.01),
            FaultSpec("ssd_device_loss", target=1, start=0.02),
        )
        with pytest.raises(ValueError, match="duplicate device loss"):
            bad.validate(num_nodes=4)

    def test_delay_without_anchor_event_rejected(self):
        bad = FaultSchedule.of(FaultSpec("aggregator_crash", delay=0.01))
        with pytest.raises(ValueError, match="no on_event to anchor"):
            bad.validate()

    def test_negative_time_caught_even_bypassing_the_ctor(self):
        spec = FaultSpec("ssd_io_error", start=0.01)
        object.__setattr__(spec, "start", -1.0)  # simulate a hand-built spec
        with pytest.raises(ValueError, match="negative trigger time"):
            FaultSchedule.of(spec).validate()

    def test_unbounded_dimensions_are_not_checked(self):
        FaultSchedule.of(FaultSpec("ssd_io_error", target=99, start=0.01)).validate()
