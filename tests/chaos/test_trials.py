"""Chaos trials end-to-end: cascades, plane equality, shrinking, replay, CLI."""

import json

import pytest

from repro.chaos import (
    ChaosTrialResult,
    ChaosTrialSpec,
    chaos_trial_specs,
    load_repro_artifact,
    render_chaos_table,
    run_chaos_trial,
    shrink_schedule,
    write_repro_artifact,
)
from repro.chaos import replay as chaos_replay
from repro.chaos.runner import CHAOS_CACHE_MODES, schedule_for, resolve_chaos_config
from repro.experiments import sweep
from repro.faults.recovery import CacheRecoveryRegistry
from repro.faults.spec import FaultSchedule, FaultSpec

SCALE = 0.25  # keeps a full two-plane trial well under a second

#: Crash while the last file's flush is in flight, then crash the recovery
#: job mid-replay — the repeated-crash schedule of DESIGN.md §9.
CASCADE = FaultSchedule.of(
    FaultSpec("aggregator_crash", target=0, on_event="write_done:1", delay=2e-3),
    FaultSpec("aggregator_crash", target=3, on_event="recovery_replay", delay=8e-4),
)


@pytest.fixture(scope="module")
def cascade_result():
    spec = ChaosTrialSpec(seed=900, cache_mode="enabled", scale=SCALE).pinned(CASCADE)
    return run_chaos_trial(spec, trace=True)


class TestRepeatedCrashRecovery:
    def test_second_crash_during_replay_still_converges(self, cascade_result):
        r = cascade_result
        assert r.outcome == "crash_recovered"
        assert r.crashes >= 2  # the cascade killed the first recovery job too
        assert r.recovery_attempts >= 2
        assert r.bytes_replayed > 0
        assert r.integrity_ok  # recovered bytes match the fault-free reference
        assert r.planes_match
        assert r.violations == []
        assert r.ok

    def test_fault_and_recovery_events_are_colored_in_the_trace(self, cascade_result):
        chrome = cascade_result.tracers["bulk"].to_chrome_trace()
        by_cat = {}
        for event in chrome["traceEvents"]:
            by_cat.setdefault(event["cat"], []).append(event)
        crashes = [e for e in by_cat["faults"] if e["name"] == "aggregator_crash"]
        assert len(crashes) >= 2
        assert all(e["cname"] == "terrible" and e["ph"] == "i" for e in crashes)
        assert by_cat["recovery"]
        assert all(e["cname"] == "good" for e in by_cat["recovery"])


class TestReplayUnderTransientFaults:
    def test_stalled_server_with_rpc_watchdog_does_not_abort_recovery(self):
        # Found by the chaos sweep (seed 48, minimized): a server stall
        # overlapping recovery trips the sync-RPC watchdog inside the
        # replay pass.  Before replay retried transient faults, the
        # PFSTimeoutError killed the replaying rank mid-collective-open
        # and left the other seven ranks deadlocked on its barrier.
        schedule = FaultSchedule.of(
            FaultSpec("server_stall", target=1, start=0.0862, duration=0.0241),
            FaultSpec("aggregator_crash", target=6, on_event="write_done:1", delay=8.5e-4),
            sync_rpc_timeout=0.01,
        )
        spec = ChaosTrialSpec(seed=48, cache_mode="enabled", scale=SCALE).pinned(
            schedule
        )
        r = run_chaos_trial(spec)
        assert r.outcome == "crash_recovered"
        assert r.violations == []
        assert r.integrity_ok
        assert r.planes_match
        assert r.ok


class TestTrialProperties:
    def test_generated_trial_is_deterministic(self):
        spec = ChaosTrialSpec(seed=4, cache_mode="coherent", scale=SCALE)
        a = run_chaos_trial(spec)
        b = run_chaos_trial(spec)
        assert a.to_dict() == b.to_dict()

    @pytest.mark.parametrize("seed", range(6))
    def test_small_seed_batch_upholds_every_property(self, seed):
        (spec,) = chaos_trial_specs([seed], scale=SCALE)
        r = run_chaos_trial(spec)
        assert r.ok, (r.outcome, r.mismatched, r.violations)
        assert r.planes_match
        assert r.violations == []

    def test_result_roundtrips_through_dict(self, cascade_result):
        again = ChaosTrialResult.from_dict(
            json.loads(json.dumps(cascade_result.to_dict()))
        )
        assert again.to_dict() == cascade_result.to_dict()

    def test_spec_batches_cycle_cache_modes(self):
        specs = chaos_trial_specs(range(6), scale=SCALE)
        assert [s.cache_mode for s in specs] == list(CHAOS_CACHE_MODES) * 2
        assert {s.flush_flag for s in specs} == {"flush_onclose", "flush_immediate"}

    def test_table_has_one_row_per_trial(self, cascade_result):
        table = render_chaos_table([cascade_result])
        assert "crash_recovered" in table
        assert len(table.splitlines()) == 3


class TestShrinkAndReplay:
    @pytest.fixture()
    def broken_recovery(self, monkeypatch):
        """Crash recovery 'forgets' to revoke the dead owner's stripe locks."""
        monkeypatch.setattr(
            CacheRecoveryRegistry, "_revoke_locks", lambda self, journal: None
        )

    def test_injected_bug_is_caught_shrunk_and_replayable(
        self, broken_recovery, tmp_path
    ):
        # Seed 4 draws a crashing schedule (windowed faults + crash); the
        # orphaned-lock invariant must catch the unrevoked leases.
        spec = ChaosTrialSpec(seed=4, cache_mode="coherent", scale=SCALE)
        result = run_chaos_trial(spec)
        assert not result.ok
        assert any("orphaned lock" in v for v in result.violations)

        schedule = schedule_for(spec, resolve_chaos_config(spec))
        runs = []

        def still_fails(candidate):
            runs.append(candidate)
            return not run_chaos_trial(spec.pinned(candidate)).ok

        shrunk = shrink_schedule(schedule, still_fails)
        assert len(shrunk.faults) <= 2  # crash (+ cascade at most) remains
        assert all(f.kind == "aggregator_crash" for f in shrunk.faults)
        assert len(runs) <= 64

        artifact = tmp_path / "repro.json"
        payload = write_repro_artifact(artifact, spec, shrunk, "orphaned lock")
        loaded_spec, loaded_schedule, loaded = load_repro_artifact(artifact)
        assert loaded_schedule == shrunk
        assert not loaded_spec.generate  # pinned: replays the exact faults
        assert loaded["config_fingerprint"] == payload["config_fingerprint"]

        # The artifact replays the failure deterministically (exit 1) ...
        assert chaos_replay.main([str(artifact)]) == 1
        replayed = run_chaos_trial(loaded_spec)
        assert any("orphaned lock" in v for v in replayed.violations)

    def test_replay_passes_once_the_bug_is_fixed(self, tmp_path):
        # ... and certifies the fix (exit 0) with the real _revoke_locks.
        spec = ChaosTrialSpec(seed=4, cache_mode="coherent", scale=SCALE)
        schedule = schedule_for(spec, resolve_chaos_config(spec))
        artifact = tmp_path / "repro.json"
        write_repro_artifact(artifact, spec, schedule, "orphaned lock")
        assert chaos_replay.main([str(artifact)]) == 0

    def test_unsupported_artifact_version_rejected(self, tmp_path):
        artifact = tmp_path / "repro.json"
        artifact.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError, match="unsupported repro artifact version"):
            load_repro_artifact(artifact)


class TestCLI:
    def test_chaos_flag_runs_seeds_and_exits_zero(self, capsys):
        status = sweep.main(
            [
                "--chaos",
                "--seeds",
                "3",
                "--jobs",
                "1",
                "--no-cache",
                "--quiet",
                "--scale",
                str(SCALE),
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "outcome" in out
        assert len([l for l in out.splitlines() if l.lstrip().startswith(("0", "1", "2"))]) >= 3

    def test_chaos_failure_exits_nonzero_with_minimized_artifact(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.setattr(
            CacheRecoveryRegistry, "_revoke_locks", lambda self, journal: None
        )
        status = sweep.main(
            [
                "--chaos",
                "--seeds",
                "1",
                "--base-seed",
                "4",
                "--jobs",
                "1",
                "--no-cache",
                "--quiet",
                "--scale",
                str(SCALE),
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert status == 1
        err = capsys.readouterr().err
        assert "CHAOS FAILURE" in err
        assert "orphaned lock" in err
        artifact = tmp_path / "chaos-repro-seed4.json"
        assert artifact.exists()
        _, shrunk, payload = load_repro_artifact(artifact)
        assert len(shrunk.faults) <= 2
        assert "repro.chaos.replay" in payload["replay"]
