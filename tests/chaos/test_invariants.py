"""Invariant monitor: conservation checks, watchdog deadlock diagnosis."""

import pytest

from repro.chaos.invariants import InvariantMonitor, InvariantViolation
from repro.config import small_testbed
from repro.machine import Machine
from repro.sim.core import DeadlockError, Simulator


def _stuck(sim, name="stuck"):
    """A process that waits forever on an event nothing will fire."""
    never = sim.event(name="never")

    def body():
        yield never

    return sim.process(body(), name=name)


class TestKernelDiagnosis:
    def test_run_until_names_blocked_processes(self):
        sim = Simulator()
        sim.process_registry = {}
        proc = _stuck(sim)
        with pytest.raises(DeadlockError) as err:
            sim.run(until=proc)
        assert ("stuck", "waiting on never") in err.value.blocked
        assert "stuck" in str(err.value)

    def test_without_registry_stays_a_bare_simerror(self):
        sim = Simulator()
        proc = _stuck(sim)
        with pytest.raises(Exception) as err:
            sim.run(until=proc)
        assert not isinstance(err.value, DeadlockError)


class TestWatchdog:
    def test_monitor_attaches_a_registry(self):
        machine = Machine(small_testbed())
        assert machine.sim.process_registry is None
        InvariantMonitor(machine)
        assert machine.sim.process_registry == {}

    def test_drain_diagnoses_a_stuck_process(self):
        machine = Machine(small_testbed())
        monitor = InvariantMonitor(machine)
        _stuck(machine.sim, name="agg-worker")
        monitor.watch()
        with pytest.raises(DeadlockError) as err:
            monitor.drain()
        assert ("agg-worker", "waiting on never") in err.value.blocked
        assert "agg-worker" in str(err.value)

    def test_clean_drain_parks_the_watchdog(self):
        machine = Machine(small_testbed())
        monitor = InvariantMonitor(machine)
        monitor.watch()
        monitor.drain()
        assert monitor.ticks >= 1
        assert not machine.sim.pending
        # Re-arming for a second phase must not raise either.
        monitor.watch()
        monitor.drain()
        assert monitor.violations == []


class TestChecks:
    def test_record_deduplicates(self):
        monitor = InvariantMonitor(Machine(small_testbed()))
        monitor.record("same thing")
        monitor.record("same thing")
        assert monitor.violations == ["same thing"]

    def test_inflow_conservation_breach_detected(self):
        machine = Machine(small_testbed())
        monitor = InvariantMonitor(machine)
        machine.io_stats["bytes_app"] += 64
        monitor.check_running()
        assert any("byte conservation (inflow)" in v for v in monitor.violations)

    def test_quiescent_conservation_breach_detected(self):
        machine = Machine(small_testbed())
        monitor = InvariantMonitor(machine)
        machine.io_stats["bytes_app"] += 64
        machine.io_stats["bytes_cached"] += 64  # inflow balances, outflow doesn't
        monitor.check_quiescent()
        assert any("byte conservation (quiescent)" in v for v in monitor.violations)

    def test_lost_bytes_must_stay_journaled(self):
        machine = Machine(small_testbed())
        monitor = InvariantMonitor(machine)
        machine.io_stats["bytes_lost"] = 32  # nothing journaled: loss vanished
        monitor.check_quiescent()
        assert any("loss accounting" in v for v in monitor.violations)

    def test_clean_machine_audits_clean(self):
        monitor = InvariantMonitor(Machine(small_testbed()))
        assert monitor.check_quiescent() == []
        monitor.assert_clean()
        assert monitor.summary() is None

    def test_assert_clean_raises_with_messages(self):
        monitor = InvariantMonitor(Machine(small_testbed()))
        monitor.record("broken")
        with pytest.raises(InvariantViolation, match="broken") as err:
            monitor.assert_clean()
        assert err.value.violations == ["broken"]
