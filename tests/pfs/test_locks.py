import pytest

from repro.pfs.locks import LockManager
from repro.sim.core import SimError, Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def locks(sim):
    return LockManager(sim, lock_rpc_time=0.001)


class TestExclusive:
    def test_acquire_release(self, sim, locks):
        def proc():
            yield from locks.acquire(1, 0)
            assert locks.held(1, 0) == "write"
            locks.release(1, 0)
            assert locks.held(1, 0) == "free"

        sim.run(until=sim.process(proc()))

    def test_contention_serialises(self, sim, locks):
        order = []

        def user(name, hold):
            yield from locks.acquire(1, 5)
            order.append((name, sim.now))
            yield sim.timeout(hold)
            locks.release(1, 5)

        sim.process(user("a", 1.0))
        sim.process(user("b", 1.0))
        sim.run()
        assert order[0][0] == "a"
        assert order[1][1] >= 1.0

    def test_different_stripes_independent(self, sim, locks):
        times = []

        def user(stripe):
            yield from locks.acquire(1, stripe)
            yield sim.timeout(1.0)
            locks.release(1, stripe)
            times.append(sim.now)

        sim.process(user(0))
        sim.process(user(1))
        sim.run()
        assert max(times) < 1.1  # no serialisation

    def test_different_files_independent(self, sim, locks):
        def proc():
            yield from locks.acquire(1, 0)
            yield from locks.acquire(2, 0)
            locks.release(1, 0)
            locks.release(2, 0)

        sim.run(until=sim.process(proc()))

    def test_release_unheld_rejected(self, sim, locks):
        with pytest.raises(SimError):
            locks.release(1, 0)

    def test_lock_rpc_cost_charged(self, sim, locks):
        def proc():
            yield from locks.acquire(1, 0)
            locks.release(1, 0)

        sim.run(until=sim.process(proc()))
        assert sim.now == pytest.approx(0.001)


class TestSharedReaders:
    def test_readers_coexist(self, sim, locks):
        def reader():
            yield from locks.acquire(1, 0, exclusive=False)
            yield sim.timeout(1.0)
            locks.release(1, 0, exclusive=False)
            return sim.now

        p1 = sim.process(reader())
        p2 = sim.process(reader())
        sim.run()
        assert p1.value == p2.value  # concurrent

    def test_writer_blocks_readers(self, sim, locks):
        def writer():
            yield from locks.acquire(1, 0)
            yield sim.timeout(2.0)
            locks.release(1, 0)

        def reader():
            yield sim.timeout(0.1)
            yield from locks.acquire(1, 0, exclusive=False)
            locks.release(1, 0, exclusive=False)
            return sim.now

        sim.process(writer())
        p = sim.process(reader())
        sim.run()
        assert p.value >= 2.0

    def test_readers_block_writer(self, sim, locks):
        def reader():
            yield from locks.acquire(1, 0, exclusive=False)
            yield sim.timeout(3.0)
            locks.release(1, 0, exclusive=False)

        def writer():
            yield sim.timeout(0.1)
            yield from locks.acquire(1, 0)
            locks.release(1, 0)
            return sim.now

        sim.process(reader())
        p = sim.process(writer())
        sim.run()
        assert p.value >= 3.0

    def test_fifo_fairness_no_writer_starvation(self, sim, locks):
        """A queued writer blocks later readers (FIFO granting)."""
        order = []

        def reader(name, start):
            yield sim.timeout(start)
            yield from locks.acquire(1, 0, exclusive=False)
            order.append(name)
            yield sim.timeout(1.0)
            locks.release(1, 0, exclusive=False)

        def writer():
            yield sim.timeout(0.5)
            yield from locks.acquire(1, 0)
            order.append("w")
            locks.release(1, 0)

        sim.process(reader("r1", 0.0))
        sim.process(writer())
        sim.process(reader("r2", 0.7))  # posted after the writer queued
        sim.run()
        assert order == ["r1", "w", "r2"]

    def test_contended_counter(self, sim, locks):
        def a():
            yield from locks.acquire(1, 0)
            yield sim.timeout(1.0)
            locks.release(1, 0)

        def b():
            yield sim.timeout(0.1)
            yield from locks.acquire(1, 0)
            locks.release(1, 0)

        sim.process(a())
        sim.process(b())
        sim.run()
        assert locks.acquires == 2
        assert locks.contended_acquires == 1
