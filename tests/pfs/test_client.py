import numpy as np
import pytest

from repro.config import small_testbed
from repro.machine import Machine
from repro.pfs.client import coalesce_target_runs
from repro.pfs.layout import StripeLayout
from repro.units import KiB, MiB


@pytest.fixture
def machine():
    return Machine(small_testbed())


def drive(machine, gen):
    return machine.sim.run(until=machine.sim.process(gen))


class TestCoalescing:
    def test_full_rows_coalesce_per_target(self):
        lay = StripeLayout(100, 4)
        runs = coalesce_target_runs(list(lay.chunks(0, 800)))  # two full rows
        assert len(runs) == 4  # one run per target
        for run in runs:
            assert sum(c.length for c in run) == 200

    def test_gap_splits_run(self):
        lay = StripeLayout(100, 2)
        chunks = list(lay.chunks(0, 100)) + list(lay.chunks(400, 100))
        runs = coalesce_target_runs(chunks)
        # both extents are on target 0 but not contiguous there
        assert len(runs) == 2

    def test_adjacent_rows_same_target_merge(self):
        lay = StripeLayout(100, 2)
        chunks = list(lay.chunks(0, 100)) + list(lay.chunks(200, 100))
        runs = coalesce_target_runs(chunks)
        assert len(runs) == 1
        assert sum(c.length for c in runs[0]) == 200


class TestWrite:
    def test_write_records_persisted(self, machine):
        client = machine.pfs_client(0)

        def proc():
            f = yield from client.create("/g/a", stripe_size=64 * KiB, stripe_count=4)
            yield from client.write(f, 0, MiB)
            return f

        f = drive(machine, proc())
        assert f.persisted.covers(0, MiB)
        assert f.size == MiB

    def test_write_data_roundtrip(self, machine):
        client = machine.pfs_client(0)
        data = np.arange(200, dtype=np.uint8)

        def proc():
            f = yield from client.create("/g/a")
            yield from client.write(f, 1000, 200, data=data)
            got = yield from client.read(f, 1000, 200)
            return got

        got = drive(machine, proc())
        assert np.array_equal(got, data)

    def test_concurrent_clients_share_servers(self):
        # Shrink the server write cache so sustained writes hit the disks,
        # where two concurrent writers must share the drain rate.
        from dataclasses import replace

        def build():
            cfg = small_testbed()
            return Machine(cfg.scaled(pfs=replace(cfg.pfs, server_cache_bytes=4 * MiB)))

        contended = build()
        results = []

        def writer(machine, rank, path, out):
            client = machine.pfs_client(rank)
            f = yield from client.create(path)
            t0 = machine.sim.now
            yield from client.write(f, 0, 256 * MiB)
            out.append(machine.sim.now - t0)

        # 6 clients × 0.58 GiB/s channel demand ≈ 3.5 GiB/s, well above the
        # ~2.3 GiB/s aggregate drain: the disks must be the shared bottleneck.
        for rank in range(6):
            contended.sim.process(writer(contended, rank, f"/g/f{rank}", results))
        contended.sim.run()

        solo_machine = build()
        solo_results = []
        solo_machine.sim.process(writer(solo_machine, 0, "/g/a", solo_results))
        solo_machine.sim.run()
        # Early arrivals may still ride the drain headroom, but the tail
        # must be visibly slowed, and everyone is at least as slow as solo.
        assert max(results) > solo_results[0] * 1.3
        assert all(r >= solo_results[0] * 0.999 for r in results)

    def test_write_sync_slower_than_pipelined(self, machine):
        client = machine.pfs_client(0)

        def proc():
            f = yield from client.create("/g/a")
            t0 = machine.sim.now
            yield from client.write(f, 0, 8 * MiB)
            pipelined = machine.sim.now - t0
            t0 = machine.sim.now
            yield from client.write_sync(f, 8 * MiB, 8 * MiB, rpc_count=16)
            synchronous = machine.sim.now - t0
            return pipelined, synchronous

        pipelined, synchronous = drive(machine, proc())
        assert synchronous > pipelined * 2

    def test_write_sync_rpc_count_charges(self, machine):
        client = machine.pfs_client(0)

        def proc(count):
            f = yield from client.create(f"/g/n{count}")
            t0 = machine.sim.now
            yield from client.write_sync(f, 0, MiB, rpc_count=count)
            return machine.sim.now - t0

        t_few = drive(machine, proc(1))
        t_many = drive(machine, proc(32))
        assert t_many > t_few

    def test_zero_length_write_noop(self, machine):
        client = machine.pfs_client(0)

        def proc():
            f = yield from client.create("/g/a")
            yield from client.write(f, 0, 0)
            return f

        f = drive(machine, proc())
        assert f.size == 0


class TestNamespace:
    def test_create_exists_unlink(self, machine):
        client = machine.pfs_client(0)

        def proc():
            yield from client.create("/g/x")

        drive(machine, proc())
        assert machine.pfs.exists("/g/x")
        machine.pfs.unlink("/g/x")
        assert not machine.pfs.exists("/g/x")

    def test_create_duplicate_rejected(self, machine):
        client = machine.pfs_client(0)

        def proc():
            yield from client.create("/g/x")
            with pytest.raises(FileExistsError):
                yield from client.create("/g/x")

        drive(machine, proc())

    def test_stripe_count_capped_by_servers(self, machine):
        client = machine.pfs_client(0)

        def proc():
            from repro.sim.core import SimError

            with pytest.raises(SimError):
                yield from client.create("/g/x", stripe_count=99)

        drive(machine, proc())

    def test_mds_ops_counted(self, machine):
        client = machine.pfs_client(0)

        def proc():
            f = yield from client.create("/g/x")
            yield from client.open("/g/x")
            yield from client.close(f)

        drive(machine, proc())
        assert machine.pfs.mds.ops == 3
