import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs.layout import StripeLayout
from repro.units import MiB


class TestBasics:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StripeLayout(0, 4)
        with pytest.raises(ValueError):
            StripeLayout(4 * MiB, 0)

    def test_stripe_of(self):
        lay = StripeLayout(100, 4)
        assert lay.stripe_of(0) == 0
        assert lay.stripe_of(99) == 0
        assert lay.stripe_of(100) == 1

    def test_target_round_robin(self):
        lay = StripeLayout(100, 4)
        assert [lay.target_of(i * 100) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_first_target_rotation(self):
        lay = StripeLayout(100, 4, first_target=2)
        assert [lay.target_of(i * 100) for i in range(4)] == [2, 3, 0, 1]

    def test_target_offset_rows(self):
        lay = StripeLayout(100, 4)
        # stripe 4 is the second row on target 0.
        assert lay.target_offset_of(400) == 100
        assert lay.target_offset_of(450) == 150

    def test_align(self):
        lay = StripeLayout(100, 4)
        assert lay.align_down(250) == 200
        assert lay.align_up(250) == 300
        assert lay.align_up(300) == 300

    def test_stripes_covered(self):
        lay = StripeLayout(100, 4)
        assert list(lay.stripes_covered(50, 200)) == [0, 1, 2]
        assert list(lay.stripes_covered(0, 0)) == []


class TestChunks:
    def test_single_stripe(self):
        lay = StripeLayout(100, 4)
        chunks = list(lay.chunks(20, 50))
        assert len(chunks) == 1
        assert chunks[0].target == 0
        assert chunks[0].target_offset == 20
        assert chunks[0].length == 50

    def test_boundary_split(self):
        lay = StripeLayout(100, 4)
        chunks = list(lay.chunks(50, 100))
        assert [(c.target, c.length) for c in chunks] == [(0, 50), (1, 50)]

    def test_full_row(self):
        lay = StripeLayout(100, 4)
        chunks = list(lay.chunks(0, 400))
        assert [c.target for c in chunks] == [0, 1, 2, 3]
        assert all(c.length == 100 for c in chunks)


sizes = st.integers(1, 64)
counts = st.integers(1, 8)
extents = st.tuples(st.integers(0, 10_000), st.integers(0, 500))


@settings(max_examples=200, deadline=None)
@given(sizes, counts, extents)
def test_chunks_partition_exactly(stripe_size, stripe_count, extent):
    offset, length = extent
    lay = StripeLayout(stripe_size, stripe_count)
    chunks = list(lay.chunks(offset, length))
    # chunks tile the extent exactly, in order, without gaps
    assert sum(c.length for c in chunks) == length
    pos = offset
    for c in chunks:
        assert c.file_offset == pos
        assert 0 < c.length <= stripe_size
        assert c.target == lay.target_of(c.file_offset)
        assert c.target_offset == lay.target_offset_of(c.file_offset)
        pos += c.length


@settings(max_examples=200, deadline=None)
@given(sizes, counts, st.integers(0, 10_000))
def test_offset_mapping_bijective_within_target(stripe_size, stripe_count, offset):
    lay = StripeLayout(stripe_size, stripe_count)
    target = lay.target_of(offset)
    toff = lay.target_offset_of(offset)
    # Reconstruct the file offset from (target, target_offset).
    row, within = divmod(toff, stripe_size)
    stripe = row * stripe_count + (target - lay.first_target) % stripe_count
    assert stripe * stripe_size + within == offset
