
from repro.config import PFSConfig
from repro.pfs.server import DataServer, WriteBackCache, RaidTarget
from repro.sim.core import Simulator
from repro.units import MiB


def make_server(**cfg_overrides):
    sim = Simulator()
    cfg = PFSConfig(jitter_sigma=0.0, **cfg_overrides)
    return sim, DataServer(sim, 0, 0, cfg)


class TestWriteBackCache:
    def test_absorb_under_limit_is_instant(self):
        sim = Simulator()
        target = RaidTarget(sim, "t", PFSConfig(jitter_sigma=0.0))
        cache = WriteBackCache(sim, target, limit=100 * MiB, drain_chunk=4 * MiB)

        def proc():
            yield from cache.absorb(10 * MiB)
            return sim.now

        p = sim.process(proc())
        sim.run(until=p)
        assert p.value == 0.0

    def test_drain_empties(self):
        sim = Simulator()
        target = RaidTarget(sim, "t", PFSConfig(jitter_sigma=0.0))
        cache = WriteBackCache(sim, target, limit=100 * MiB, drain_chunk=4 * MiB)

        def proc():
            yield from cache.absorb(20 * MiB)
            yield from cache.drain_all()

        sim.run(until=sim.process(proc()))
        assert cache.dirty == 0
        assert target.bytes_written == 20 * MiB

    def test_throttles_when_full(self):
        sim = Simulator()
        cfg = PFSConfig(jitter_sigma=0.0)
        target = RaidTarget(sim, "t", cfg)
        cache = WriteBackCache(sim, target, limit=8 * MiB, drain_chunk=4 * MiB)

        def proc():
            yield from cache.absorb(64 * MiB)
            return sim.now

        p = sim.process(proc())
        sim.run(until=p)
        # Most of the 64 MiB had to wait for drain at disk speed.
        assert p.value >= (64 - 8) * MiB / cfg.hdd.stream_bw * 0.9


class TestDataServer:
    def test_write_ack_before_disk(self):
        sim, srv = make_server()

        def proc():
            yield from srv.serve_write(0, 4 * MiB)
            return sim.now

        p = sim.process(proc())
        sim.run(until=p)
        # Ack came from the cache: far faster than the 4MiB disk time.
        assert p.value < 4 * MiB / srv.cfg.hdd.stream_bw

    def test_sustained_load_settles_to_disk_rate(self):
        sim, srv = make_server(server_cache_bytes=8 * MiB)
        total = 256 * MiB

        def proc():
            pos = 0
            while pos < total:
                yield from srv.serve_write(pos, 4 * MiB)
                pos += 4 * MiB
            return sim.now

        p = sim.process(proc())
        sim.run(until=p)
        disk_floor = (total - 8 * MiB) / srv.cfg.hdd.stream_bw
        assert p.value >= disk_floor * 0.9

    def test_rpc_count_multiplies_overhead(self):
        sim, srv = make_server()

        def proc():
            t0 = sim.now
            yield from srv.serve_write(0, MiB, rpc_count=1)
            one = sim.now - t0
            t0 = sim.now
            yield from srv.serve_write(MiB, MiB, rpc_count=10)
            ten = sim.now - t0
            return one, ten

        p = sim.process(proc())
        sim.run(until=p)
        one, ten = p.value
        assert ten >= one + 8 * srv.cfg.rpc_overhead

    def test_worker_pool_limits_concurrency(self):
        sim, srv = make_server()
        done = []

        def client(i):
            yield from srv.serve_write(i * MiB, MiB)
            done.append(sim.now)

        for i in range(8):
            sim.process(client(i))
        sim.run()
        # 8 requests through 4 workers: at least two overhead waves.
        assert max(done) >= 2 * srv.cfg.rpc_overhead

    def test_jitter_reproducible(self):
        from repro.sim.rng import RngStreams

        def one(seed):
            sim = Simulator()
            srv = DataServer(sim, 0, 0, PFSConfig(), rng=RngStreams(seed))

            def proc():
                for i in range(5):
                    yield from srv.serve_write(i * MiB, MiB)
                return sim.now

            p = sim.process(proc())
            sim.run(until=p)
            return p.value

        assert one(3) == one(3)
        assert one(3) != one(4)

    def test_reads_hit_disk(self):
        sim, srv = make_server()

        def proc():
            t0 = sim.now
            yield from srv.serve_read(0, 4 * MiB)
            return sim.now - t0

        p = sim.process(proc())
        sim.run(until=p)
        assert p.value >= 4 * MiB / srv.cfg.hdd.stream_bw
