import numpy as np
import pytest

from repro.pfs.filesystem import PFSFile
from repro.pfs.layout import StripeLayout


@pytest.fixture
def f():
    return PFSFile("/g/x", StripeLayout(4096, 4))


class TestRecordWrite:
    def test_size_and_persisted(self, f):
        f.record_write(100, 50, None)
        assert f.size == 150
        assert f.persisted.covers(100, 150)
        assert not f.persisted.covers(0, 100)

    def test_virtual_write_keeps_no_data(self, f):
        f.record_write(0, 10, None)
        assert f.read_back(0, 10) is None

    def test_payload_length_checked(self, f):
        with pytest.raises(Exception):
            f.record_write(0, 10, np.zeros(5, dtype=np.uint8))

    def test_overlapping_writes_overlay_in_time_order(self, f):
        """Regression: overlapping extents must apply last-writer-wins by
        WRITE TIME, not by offset (the sieve RMW lost-update bug)."""
        # writer B at a *lower* offset writes after writer A
        f.record_write(100, 100, np.full(100, 7, dtype=np.uint8))
        f.record_write(50, 100, np.full(100, 9, dtype=np.uint8))
        img = f.data_image()
        assert np.all(img[50:150] == 9)
        assert np.all(img[150:200] == 7)
        # and the reverse order gives the reverse outcome
        f2 = PFSFile("/g/y", StripeLayout(4096, 4))
        f2.record_write(50, 100, np.full(100, 9, dtype=np.uint8))
        f2.record_write(100, 100, np.full(100, 7, dtype=np.uint8))
        img2 = f2.data_image()
        assert np.all(img2[100:200] == 7)
        assert np.all(img2[50:100] == 9)

    def test_read_back_partial_overlap(self, f):
        f.record_write(10, 10, np.arange(10, dtype=np.uint8))
        got = f.read_back(5, 10)
        assert np.all(got[:5] == 0)
        assert list(got[5:]) == [0, 1, 2, 3, 4]


class TestPersistedTracking:
    def test_disjoint_extents_counted(self, f):
        f.record_write(0, 10, None)
        f.record_write(100, 10, None)
        assert f.persisted.total == 20

    def test_overlap_not_double_counted(self, f):
        f.record_write(0, 100, None)
        f.record_write(50, 100, None)
        assert f.persisted.total == 150
