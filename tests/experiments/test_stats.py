import numpy as np

from repro.access import RankAccess
from repro.experiments.stats import collect
from repro.units import KiB
from tests.conftest import make_cluster

CACHE = {
    "e10_cache": "enable",
    "e10_cache_flush_flag": "flush_immediate",
    "romio_cb_write": "enable",
    "cb_nodes": "2",
    "cb_buffer_size": "32k",
}


def run(hints):
    machine, world, layer = make_cluster()

    def body(ctx):
        fh = yield from layer.open(ctx.rank, "/g/t", hints)
        data = np.full(8 * KiB, ctx.rank + 1, dtype=np.uint8)
        yield from fh.write_all(RankAccess.contiguous(ctx.rank * 8 * KiB, 8 * KiB, data))
        yield from fh.close()

    world.run(body)
    return machine


class TestCollect:
    def test_cached_run_touches_both_tiers(self):
        machine = run(CACHE)
        stats = collect(machine)
        total = 8 * 8 * KiB
        # cache writes land on node SSDs (via writeback); the flush moves
        # everything through the servers — acked data may still sit in the
        # server write-back caches when the ranks finish, so RAID platters
        # plus dirty server bytes account for the total.
        assert stats.ssd.bytes_written == total
        assert machine.pfs.bytes_persisted == total
        assert stats.pfs_targets.bytes_written > 0
        assert stats.server_rpcs > 0
        assert stats.mds_ops >= 2  # create + close
        assert stats.sim_time > 0
        assert stats.events > 0

    def test_uncached_run_skips_ssds(self):
        hints = {k: v for k, v in CACHE.items() if not k.startswith("e10")}
        machine = run(hints)
        stats = collect(machine)
        assert stats.ssd.bytes_written == 0
        assert machine.pfs.bytes_persisted == 8 * 8 * KiB

    def test_discard_leaves_scratch_empty(self):
        stats = collect(run(CACHE))
        assert stats.scratch_used == 0  # e10_cache_discard_flag defaults to enable

    def test_peak_pinned_matches_cb_buffer(self):
        stats = collect(run(CACHE))
        assert stats.peak_pinned == 32 * KiB

    def test_summary_renders(self):
        stats = collect(run(CACHE))
        text = stats.summary()
        assert "fabric traffic" in text
        assert "PFS RAID targets" in text
        assert "extent locks" in text
