"""End-to-end experiment runs at tiny scale; paper-shape assertions live in
tests/integration/test_shapes.py (slower, full default scale)."""

import pytest

from repro.config import small_testbed
from repro.experiments.resultcache import ResultCache
from repro.experiments.runner import (
    ExperimentSpec,
    build_workload,
    clear_memo,
    hints_for,
    run_experiment,
    run_experiment_cached,
)
from repro.units import MiB

TINY = dict(scale=0.02, num_files=2, flush_batch_chunks=16)


class TestSpec:
    def test_label(self):
        spec = ExperimentSpec("ior", aggregators=8, cb_buffer=4 * MiB)
        assert spec.label == "8_4M"

    def test_invalid_benchmark(self):
        with pytest.raises(ValueError):
            ExperimentSpec("hpl")

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ExperimentSpec("ior", cache_mode="maybe")

    def test_hints_for_modes(self):
        assert "e10_cache" not in hints_for(ExperimentSpec("ior"))
        enabled = hints_for(ExperimentSpec("ior", cache_mode="enabled"))
        assert enabled["e10_cache"] == "enable"
        assert enabled["e10_cache_flush_flag"] == "flush_immediate"
        theo = hints_for(ExperimentSpec("ior", cache_mode="theoretical"))
        assert theo["e10_cache_flush_flag"] == "flush_none"

    def test_workload_scaling_preserves_ior_block(self):
        wl_small = build_workload(ExperimentSpec("ior", scale=0.25), 512)
        wl_full = build_workload(ExperimentSpec("ior", scale=1.0), 512)
        assert wl_small.detail["block_bytes"] == wl_full.detail["block_bytes"]
        assert wl_small.detail["segments"] < wl_full.detail["segments"]


class TestRun:
    # note: the parameter is named `bench` because pytest-benchmark reserves
    # the `benchmark` fixture name.
    @pytest.mark.parametrize("bench", ["ior", "flash_io", "coll_perf"])
    def test_disabled_mode_persists_everything(self, bench):
        spec = ExperimentSpec(bench, cache_mode="disabled", **TINY)
        r = run_experiment(spec)
        assert r.bytes_persisted == spec.num_files * r.file_size
        assert r.bw > 0
        assert r.close_wait == pytest.approx(0.0, abs=0.05)

    def test_enabled_mode_persists_everything(self):
        spec = ExperimentSpec("ior", cache_mode="enabled", **TINY)
        r = run_experiment(spec)
        assert r.bytes_persisted == spec.num_files * r.file_size

    def test_theoretical_mode_persists_nothing(self):
        spec = ExperimentSpec("ior", cache_mode="theoretical", **TINY)
        r = run_experiment(spec)
        assert r.bytes_persisted == 0

    def test_enabled_faster_than_disabled(self):
        fast = run_experiment(ExperimentSpec("ior", cache_mode="enabled", **TINY))
        slow = run_experiment(ExperimentSpec("ior", cache_mode="disabled", **TINY))
        assert fast.bw > slow.bw

    def test_breakdown_has_expected_phases(self):
        r = run_experiment(ExperimentSpec("ior", cache_mode="disabled", **TINY))
        assert "write" in r.breakdown
        assert "shuffle_all2all" in r.breakdown
        assert "post_write" in r.breakdown

    def test_peak_pinned_tracks_cb_buffer(self):
        small = run_experiment(
            ExperimentSpec("ior", cb_buffer=4 * MiB, cache_mode="enabled", **TINY)
        )
        big = run_experiment(
            ExperimentSpec("ior", cb_buffer=64 * MiB, cache_mode="enabled", **TINY)
        )
        assert big.peak_pinned == 64 * MiB
        assert small.peak_pinned == 4 * MiB

    def test_determinism(self):
        spec = ExperimentSpec("ior", cache_mode="enabled", **TINY)
        r1 = run_experiment(spec)
        r2 = run_experiment(spec)
        assert r1.bw == r2.bw
        assert r1.breakdown == r2.breakdown

    def test_cached_runner_memoises(self):
        spec = ExperimentSpec("ior", cache_mode="disabled", **TINY)
        a = run_experiment_cached(spec)
        b = run_experiment_cached(spec)
        assert a is b


class TestCachedRunnerConfigKey:
    def test_different_configs_do_not_alias(self, tmp_path):
        """Regression: the memo used to key on the spec alone, so a second
        call with a different ClusterConfig returned the first's result."""
        clear_memo()
        cache = ResultCache(root=tmp_path)
        spec = ExperimentSpec("ior", cache_mode="disabled", **TINY)
        small = run_experiment_cached(spec, config=small_testbed(4, 2), cache=cache)
        big = run_experiment_cached(spec, config=small_testbed(8, 2), cache=cache)
        assert small is not big
        assert (small.file_size, small.bw) != (big.file_size, big.bw)
        again = run_experiment_cached(spec, config=small_testbed(4, 2), cache=cache)
        assert again is small

    def test_disk_cache_survives_memo_clear(self, tmp_path, monkeypatch):
        import repro.experiments.runner as runner_mod

        clear_memo()
        spec = ExperimentSpec("ior", cache_mode="disabled", **TINY)
        cfg = small_testbed(4, 2)
        first = run_experiment_cached(spec, config=cfg, cache=ResultCache(root=tmp_path))
        clear_memo()
        monkeypatch.setattr(
            runner_mod,
            "run_experiment",
            lambda *a, **k: pytest.fail("should have hit the disk cache"),
        )
        second = run_experiment_cached(
            spec, config=cfg, cache=ResultCache(root=tmp_path)
        )
        assert second == first
        assert second is not first  # round-tripped through JSON, not the memo
