"""SweepRunner: parallel == serial bit-for-bit, caching, crash handling."""

import json
import multiprocessing
import time

import pytest

from repro.experiments.parallel import SweepError, SweepRunner
from repro.experiments.resultcache import ResultCache
from repro.experiments.runner import ExperimentSpec
from tests.experiments.test_resultcache import fake_result

TINY = dict(scale=0.02, num_files=2, flush_batch_chunks=16)

SPECS = [
    ExperimentSpec("ior", cache_mode="disabled", **TINY),
    ExperimentSpec("ior", cache_mode="enabled", **TINY),
    ExperimentSpec("ior", cache_mode="theoretical", **TINY),
]


def dumps(results):
    return [json.dumps(r.to_dict(), sort_keys=True) for r in results]


# -- pool workers (module-level: picklable by reference) -------------------------


def _fake_worker(spec, config):
    return fake_result(spec)


def _crash_in_child(spec, config):
    """Fails inside a pool worker, succeeds on the inline parent retry."""
    if multiprocessing.parent_process() is not None:
        raise RuntimeError("simulated worker crash")
    return fake_result(spec)


def _always_crash(spec, config):
    raise RuntimeError("boom")


def _sleepy_worker(spec, config):
    time.sleep(2.0)
    return fake_result(spec)


class TestDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self, tmp_path):
        serial = SweepRunner(jobs=1, cache=ResultCache.disabled())
        parallel = SweepRunner(jobs=2, cache=ResultCache.disabled())
        a = serial.run(SPECS)
        b = parallel.run(SPECS)
        assert dumps(a) == dumps(b)
        assert serial.simulated == parallel.simulated == len(SPECS)

    def test_results_keep_input_order(self):
        runner = SweepRunner(jobs=2, cache=ResultCache.disabled(), worker=_fake_worker)
        results = runner.run(list(reversed(SPECS)))
        assert [r.spec for r in results] == list(reversed(SPECS))


class TestCacheIntegration:
    def test_warm_cache_performs_zero_simulations(self, tmp_path):
        sources = []
        cache = ResultCache(root=tmp_path)
        cold = SweepRunner(jobs=1, cache=cache, worker=_fake_worker)
        cold.run(SPECS)
        assert cold.simulated == len(SPECS)

        warm = SweepRunner(
            jobs=1,
            cache=ResultCache(root=tmp_path),
            worker=_always_crash,  # would fail loudly if any point simulated
            progress=lambda d, t, s, src: sources.append(src),
        )
        results = warm.run(SPECS)
        assert warm.simulated == 0
        assert sources == ["cache"] * len(SPECS)
        assert dumps(results) == dumps([fake_result(s) for s in SPECS])

    def test_duplicate_specs_simulate_once(self, tmp_path):
        calls = []

        def counting_worker(spec, config):
            calls.append(spec)
            return fake_result(spec)

        runner = SweepRunner(
            jobs=1, cache=ResultCache(root=tmp_path), worker=counting_worker
        )
        results = runner.run([SPECS[0], SPECS[1], SPECS[0], SPECS[0]])
        assert len(calls) == 2
        assert results[2] is results[0] and results[3] is results[0]

    def test_sweep_populates_cache_for_cached_runner(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        SweepRunner(jobs=1, cache=cache, worker=_fake_worker).run(SPECS[:1])
        from repro.experiments.runner import clear_memo, run_experiment_cached

        clear_memo()
        hit = run_experiment_cached(SPECS[0], cache=ResultCache(root=tmp_path))
        assert hit == fake_result(SPECS[0])


class TestFailureHandling:
    def test_pool_crash_is_retried_inline(self):
        sources = []
        runner = SweepRunner(
            jobs=2,
            cache=ResultCache.disabled(),
            worker=_crash_in_child,
            progress=lambda d, t, s, src: sources.append(src),
        )
        results = runner.run(SPECS[:2])
        assert sources.count("retry") == 2
        assert dumps(results) == dumps([fake_result(s) for s in SPECS[:2]])

    def test_exhausted_retries_raise_sweep_error(self):
        runner = SweepRunner(jobs=1, cache=ResultCache.disabled(), worker=_always_crash)
        with pytest.raises(SweepError) as err:
            runner.run(SPECS[:2])
        assert len(err.value.failures) == 2
        assert "boom" in str(err.value)

    def test_no_retries_surfaces_first_failure(self):
        runner = SweepRunner(
            jobs=2, cache=ResultCache.disabled(), worker=_crash_in_child, retries=0
        )
        with pytest.raises(SweepError):
            runner.run(SPECS[:2])

    def test_timeout_is_a_retryable_failure(self):
        runner = SweepRunner(
            jobs=2,
            cache=ResultCache.disabled(),
            worker=_sleepy_worker,
            timeout=0.2,
            retries=0,
        )
        with pytest.raises(SweepError) as err:
            runner.run(SPECS[:2])
        assert len(err.value.failures) >= 1
