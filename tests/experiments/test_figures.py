"""The figure-regeneration API at miniature scale (structure, not shapes —
the shapes are asserted by tests/integration/test_shapes.py and the
benchmarks)."""

import pytest

from repro.experiments import figures
from repro.units import MiB

TINY_AGGS = (8, 64)
TINY_CBS = (16 * MiB,)
SCALE = 0.02


@pytest.fixture(scope="module")
def fig4():
    return figures.fig4_collperf_bandwidth(TINY_AGGS, TINY_CBS, scale=SCALE)


class TestBandwidthFigures:
    def test_labels(self, fig4):
        assert set(fig4) == {"8_16M", "64_16M"}

    def test_three_series(self, fig4):
        for row in fig4.values():
            assert set(row) == set(figures.SERIES)
            assert all(v > 0 for v in row.values())

    def test_tbw_at_least_perceived(self, fig4):
        for row in fig4.values():
            assert row["TBW Cache Enable"] >= row["BW Cache Enable"] * 0.99

    def test_fig9_includes_last_phase(self):
        fig9 = figures.fig9_ior_bandwidth(TINY_AGGS, TINY_CBS, scale=SCALE)
        for row in fig9.values():
            # with the last phase charged, enabled BW < TBW strictly
            assert row["BW Cache Enable"] < row["TBW Cache Enable"]


class TestBreakdownFigures:
    def test_fig5_phases(self):
        data = figures.fig5_collperf_breakdown_cache(TINY_AGGS, TINY_CBS, scale=SCALE)
        for row in data.values():
            assert "write" in row and "comm" in row

    def test_fig6_no_not_hidden_sync(self):
        data = figures.fig6_collperf_breakdown_nocache(TINY_AGGS, TINY_CBS, scale=SCALE)
        for row in data.values():
            assert row.get("not_hidden_sync", 0.0) == 0.0

    def test_sweep_labels_helper(self):
        labels = figures.sweep_labels([8, 16], [4 * MiB, 64 * MiB])
        assert labels == ["8_4M", "8_64M", "16_4M", "16_64M"]
