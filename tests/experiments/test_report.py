from repro.experiments.report import (
    render_bandwidth_table,
    render_bars,
    render_breakdown_table,
    shape_checks_bandwidth,
)


BW_DATA = {
    "8_4M": {"BW Cache Disable": 2.0, "BW Cache Enable": 1.5, "TBW Cache Enable": 3.0},
    "64_4M": {"BW Cache Disable": 2.0, "BW Cache Enable": 20.0, "TBW Cache Enable": 20.5},
}

BD_DATA = {
    "8_4M": {"write": 1.5, "comm": 0.7, "not_hidden_sync": 9.0},
    "64_4M": {"write": 0.4, "comm": 0.2},
}


class TestRendering:
    def test_bandwidth_table_contains_all_cells(self):
        out = render_bandwidth_table("Fig 4", BW_DATA)
        assert "Fig 4" in out
        assert "8_4M" in out and "64_4M" in out
        assert "20.00" in out and "1.50" in out
        assert "GiB/s" in out

    def test_breakdown_table_orders_phases(self):
        out = render_breakdown_table("Fig 5", BD_DATA)
        assert out.index("comm") < out.index("write") < out.index("not_hidden_sync")
        assert "9.000" in out

    def test_breakdown_missing_phase_rendered_zero(self):
        out = render_breakdown_table("Fig 5", BD_DATA)
        lines = [l for l in out.splitlines() if l.startswith("64_4M")]
        assert "0.000" in lines[0]  # 64_4M has no not_hidden_sync

    def test_bars(self):
        out = render_bars("Fig 4", BW_DATA, "BW Cache Enable")
        assert out.count("|") == 2
        assert "#" in out


class TestShapeChecks:
    def test_paper_shapes_pass_on_paper_like_data(self):
        checks = shape_checks_bandwidth(BW_DATA)
        assert all(checks.values()), checks

    def test_detects_missing_speedup(self):
        bad = {
            "64_4M": {
                "BW Cache Disable": 2.0,
                "BW Cache Enable": 2.1,
                "TBW Cache Enable": 2.2,
            },
            "8_4M": {
                "BW Cache Disable": 2.0,
                "BW Cache Enable": 1.9,
                "TBW Cache Enable": 2.0,
            },
        }
        checks = shape_checks_bandwidth(bad)
        assert not checks["cache_speedup_at_16plus_aggregators"]
