"""On-disk result cache: keys, round trips, invalidation, corruption."""

import dataclasses
import json

from repro.config import small_testbed
from repro.experiments import resultcache
from repro.experiments.resultcache import (
    ResultCache,
    cache_key,
    config_fingerprint,
)
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    resolve_config,
)
from repro.units import MiB

SPEC = ExperimentSpec("ior", aggregators=16, cb_buffer=8 * MiB, scale=0.05)


def fake_result(spec=SPEC, bw=2.5e9) -> ExperimentResult:
    """A structurally complete result without running a simulation."""
    return ExperimentResult(
        spec=spec,
        file_size=64 * MiB,
        bw=bw,
        bw_incl_last=bw * 0.75,
        breakdown={"write": 1.25, "shuffle_all2all": 0.5, "post_write": 0.125},
        write_time=3.0625,
        close_wait=0.0078125,
        peak_pinned=8 * MiB,
        bytes_persisted=256 * MiB,
        events=12345,
    )


class TestRoundTrip:
    def test_result_to_from_dict_identity(self):
        r = fake_result()
        again = ExperimentResult.from_dict(r.to_dict())
        assert again == r
        assert again.spec == r.spec

    def test_round_trip_through_json_is_bit_exact(self):
        r = fake_result(bw=2.0e9 / 3.0)  # a float with no short decimal form
        wire = json.loads(json.dumps(r.to_dict()))
        again = ExperimentResult.from_dict(wire)
        assert again == r
        assert json.dumps(again.to_dict(), sort_keys=True) == json.dumps(
            r.to_dict(), sort_keys=True
        )


class TestKeys:
    def test_key_is_deterministic(self):
        cfg = resolve_config(SPEC)
        assert cache_key(SPEC, cfg) == cache_key(SPEC, cfg)

    def test_key_depends_on_spec(self):
        cfg = resolve_config(SPEC)
        other = dataclasses.replace(SPEC, aggregators=32)
        assert cache_key(SPEC, cfg) != cache_key(other, cfg)

    def test_key_depends_on_config(self):
        """Regression: the old memo keyed on the spec alone, so two different
        ClusterConfigs aliased to one cached result."""
        cfg1 = small_testbed()
        cfg2 = small_testbed(num_nodes=8)
        assert config_fingerprint(cfg1) != config_fingerprint(cfg2)
        assert cache_key(SPEC, cfg1) != cache_key(SPEC, cfg2)

    def test_key_depends_on_schema_version(self, monkeypatch):
        cfg = resolve_config(SPEC)
        before = cache_key(SPEC, cfg)
        monkeypatch.setattr(
            resultcache, "CACHE_SCHEMA_VERSION", resultcache.CACHE_SCHEMA_VERSION + 1
        )
        assert cache_key(SPEC, cfg) != before


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cfg = resolve_config(SPEC)
        assert cache.get(SPEC, cfg) is None
        cache.put(SPEC, cfg, fake_result())
        hit = cache.get(SPEC, cfg)
        assert hit == fake_result()
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1, "corrupt": 0}

    def test_different_config_misses(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cfg1 = small_testbed()
        cfg2 = small_testbed(num_nodes=8)
        cache.put(SPEC, cfg1, fake_result())
        assert cache.get(SPEC, cfg2) is None
        assert cache.get(SPEC, cfg1) is not None

    def test_schema_bump_invalidates(self, tmp_path, monkeypatch):
        cache = ResultCache(root=tmp_path)
        cfg = resolve_config(SPEC)
        cache.put(SPEC, cfg, fake_result())
        monkeypatch.setattr(
            resultcache, "CACHE_SCHEMA_VERSION", resultcache.CACHE_SCHEMA_VERSION + 1
        )
        assert cache.get(SPEC, cfg) is None

    def test_corrupt_file_is_a_miss_not_fatal(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cfg = resolve_config(SPEC)
        path = cache.put(SPEC, cfg, fake_result())
        path.write_text("{ not json at all")
        assert cache.get(SPEC, cfg) is None
        assert cache.corrupt == 1
        # a fresh put repairs the entry
        cache.put(SPEC, cfg, fake_result())
        assert cache.get(SPEC, cfg) == fake_result()

    def test_truncated_record_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cfg = resolve_config(SPEC)
        path = cache.put(SPEC, cfg, fake_result())
        record = json.loads(path.read_text())
        del record["result"]
        path.write_text(json.dumps(record))
        assert cache.get(SPEC, cfg) is None
        assert cache.corrupt == 1

    def test_disabled_cache_touches_nothing(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=False)
        cfg = resolve_config(SPEC)
        assert cache.put(SPEC, cfg, fake_result()) is None
        assert cache.get(SPEC, cfg) is None
        assert list(tmp_path.iterdir()) == []

    def test_clear(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cfg = resolve_config(SPEC)
        cache.put(SPEC, cfg, fake_result())
        other = dataclasses.replace(SPEC, aggregators=64)
        cache.put(other, cfg, fake_result(other))
        assert cache.clear() == 2
        assert cache.get(SPEC, cfg) is None
