import numpy as np
import pytest

from repro.access import RankAccess
from repro.sim.core import SimError
from repro.units import KiB
from tests.conftest import make_cluster


class TestOpenClose:
    def test_collective_open_creates_once(self):
        machine, world, layer = make_cluster()

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", {})
            yield from fh.close()
            return fh.fd

        fds = world.run(body)
        assert all(fd is fds[0] for fd in fds)  # shared descriptor
        assert machine.pfs.exists("/g/t")

    def test_striping_hints_applied(self):
        machine, world, layer = make_cluster()

        def body(ctx):
            fh = yield from layer.open(
                ctx.rank, "/g/t", {"striping_unit": "64k", "striping_factor": "2"}
            )
            yield from fh.close()

        world.run(body)
        f = machine.pfs.lookup("/g/t")
        assert f.layout.stripe_size == 64 * KiB
        assert f.layout.stripe_count == 2

    def test_reopen_same_path_new_descriptor(self):
        machine, world, layer = make_cluster()

        def body(ctx):
            fh1 = yield from layer.open(ctx.rank, "/g/t", {})
            yield from fh1.close()
            fh2 = yield from layer.open(ctx.rank, "/g/t", {})
            yield from fh2.close()
            return fh1.fd is fh2.fd

        assert world.run(body) == [False] * 8

    def test_operation_on_closed_file_rejected(self):
        machine, world, layer = make_cluster()

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", {})
            yield from fh.close()
            with pytest.raises(SimError):
                yield from fh.write_at(0, 10)
            return True

        assert all(world.run(body))

    def test_get_info_roundtrip(self):
        machine, world, layer = make_cluster()

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", {"e10_cache": "enable"})
            info = fh.get_info()
            yield from fh.close()
            return info

        infos = world.run(body)
        assert infos[0]["e10_cache"] == "enable"

    def test_close_is_collective(self):
        machine, world, layer = make_cluster()
        exits = []

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", {})
            if ctx.rank == 0:
                yield from ctx.compute(0.5)  # rank 0 arrives late at close
            yield from fh.close()
            exits.append(ctx.now)

        world.run(body)
        assert max(exits) - min(exits) < 1e-6
        assert min(exits) >= 0.5


class TestIndependentIO:
    def test_write_at_and_read_at(self):
        machine, world, layer = make_cluster()
        data = np.arange(100, dtype=np.uint8)

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", {})
            if ctx.rank == 0:
                yield from fh.write_at(50, 100, data)
            yield from fh.sync()  # makes it visible + synchronises ranks
            got = yield from fh.read_at(50, 100)
            yield from fh.close()
            return got

        results = world.run(body)
        for got in results:
            assert np.array_equal(got, data)


class TestCacheFallback:
    def test_full_scratch_reverts_to_standard_open(self):
        """Paper: 'If for any reason the open of the cache file fails, the
        implementation reverts to standard open' — here the cache fills at
        write time and the driver falls back to the direct path."""

        machine, world, layer = make_cluster()
        # shrink node 0's scratch capacity to almost nothing
        for fs in machine.local_fs:
            fs.capacity = 4 * KiB

        def body(ctx):
            fh = yield from layer.open(
                ctx.rank,
                "/g/t",
                {"e10_cache": "enable", "e10_cache_flush_flag": "flush_immediate",
                 "cb_nodes": "2", "romio_cb_write": "enable"},
            )
            data = np.full(16 * KiB, ctx.rank + 1, dtype=np.uint8)
            acc = RankAccess.contiguous(ctx.rank * 16 * KiB, 16 * KiB, data)
            yield from fh.write_all(acc)
            yield from fh.close()

        world.run(body)
        f = machine.pfs.lookup("/g/t")
        img = f.data_image()
        for r in range(8):
            assert np.all(img[r * 16 * KiB : (r + 1) * 16 * KiB] == r + 1)
