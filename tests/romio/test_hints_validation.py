"""Hint validation: nonsense values must fail fast, however constructed."""

import pytest

from repro.romio.hints import HintError, Hints


class TestParseTimeRejection:
    @pytest.mark.parametrize("value", ["0", "-4096", "-1k"])
    def test_nonpositive_ind_wr_buffer_size(self, value):
        with pytest.raises(HintError, match="ind_wr_buffer_size"):
            Hints.from_info({"ind_wr_buffer_size": value})

    @pytest.mark.parametrize("value", ["0", "-16m"])
    def test_nonpositive_cb_buffer_size(self, value):
        with pytest.raises(HintError, match="cb_buffer_size"):
            Hints.from_info({"cb_buffer_size": value})

    @pytest.mark.parametrize("value", ["", "   "])
    def test_empty_cache_path(self, value):
        with pytest.raises(HintError, match="e10_cache_path"):
            Hints.from_info({"e10_cache_path": value})


class TestValidateMethod:
    """Hints built directly (bypassing from_info) still get checked."""

    def test_validate_returns_self_for_chaining(self):
        h = Hints()
        assert h.validate() is h

    def test_direct_bad_cb_buffer_size(self):
        h = Hints(cb_buffer_size=0)
        with pytest.raises(HintError, match="cb_buffer_size"):
            h.validate()

    def test_direct_bad_ind_wr_buffer_size(self):
        h = Hints(ind_wr_buffer_size=-1)
        with pytest.raises(HintError, match="ind_wr_buffer_size"):
            h.validate()

    def test_direct_bad_cb_nodes(self):
        h = Hints(cb_nodes=0)
        with pytest.raises(HintError, match="cb_nodes"):
            h.validate()

    def test_blank_path_only_fatal_with_cache_enabled(self):
        # Cache disabled: an unused blank path is tolerated.
        Hints(e10_cache_path=" ").validate()
        h = Hints(e10_cache="enable", e10_cache_path=" ")
        with pytest.raises(HintError, match="e10_cache_path"):
            h.validate()

    def test_hint_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            Hints(cb_buffer_size=-1).validate()


class TestMessagesNameFieldAndValue:
    """Every rejection names the offending hint key and its value."""

    def test_size_message_carries_the_raw_value(self):
        with pytest.raises(HintError, match=r"cb_buffer_size='-16m': negative"):
            Hints.from_info({"cb_buffer_size": "-16m"})

    def test_non_integer_message_carries_the_raw_value(self):
        with pytest.raises(HintError, match=r"cb_nodes='many': not an integer"):
            Hints.from_info({"cb_nodes": "many"})

    def test_enum_message_lists_the_allowed_values(self):
        with pytest.raises(
            HintError, match=r"romio_cb_write='sometimes': expected one of"
        ):
            Hints.from_info({"romio_cb_write": "sometimes"})

    def test_constructed_hints_report_field_and_value(self):
        with pytest.raises(HintError, match=r"cb_buffer_size=0: must be positive"):
            Hints(cb_buffer_size=0).validate()
