"""Correctness of the two-phase collective write at flow fidelity.

Every test writes real payload bytes through the full stack and verifies
the final global-file image byte-for-byte against an independently computed
expectation.
"""

import numpy as np
import pytest

from repro.access import RankAccess
from repro.romio.ext2ph import is_interleaved
from repro.units import KiB
from tests.conftest import make_cluster


def expected_image(patterns, size):
    img = np.zeros(size, dtype=np.uint8)
    for acc in patterns:
        if acc.data is None:
            continue
        pos = 0
        for off, length in zip(acc.offsets, acc.lengths):
            img[off : off + length] = acc.data[pos : pos + length]
            pos += length
    return img


def run_write_all(patterns, hints, num_nodes=4, procs_per_node=2, driver="beegfs"):
    machine, world, layer = make_cluster(num_nodes, procs_per_node, driver=driver)

    def body(ctx):
        fh = yield from layer.open(ctx.rank, "/g/t", hints)
        n = yield from fh.write_all(patterns[ctx.rank])
        yield from fh.close()
        return n

    world.run(body)
    return machine, machine.pfs.lookup("/g/t")


def strided_patterns(nprocs, block=4 * KiB, reps=4, seed=0):
    out = []
    for r in range(nprocs):
        offs = np.array([r * block + k * nprocs * block for k in range(reps)])
        lens = np.full(reps, block)
        rng = np.random.default_rng(seed * 1000 + r)
        data = rng.integers(0, 256, size=block * reps, dtype=np.uint8)
        out.append(RankAccess(offs, lens, data))
    return out


class TestInterleaveDetection:
    def test_disjoint_ordered(self):
        assert not is_interleaved([(0, 9), (10, 19), (20, 29)])

    def test_overlapping(self):
        assert is_interleaved([(0, 10), (5, 15)])

    def test_out_of_order_ranks(self):
        assert is_interleaved([(10, 19), (0, 9)])

    def test_empty_ranks_skipped(self):
        assert not is_interleaved([(0, 9), (0, -1), (10, 19)])

    def test_touching_is_interleaved(self):
        # ROMIO counts st <= prev_end as interleaved (byte 9 shared).
        assert is_interleaved([(0, 9), (9, 19)])


class TestDataCorrectness:
    @pytest.mark.parametrize("cb", ["8k", "32k", "1m"])
    def test_strided_roundtrip_buffer_sizes(self, cb):
        patterns = strided_patterns(8)
        _, f = run_write_all(patterns, {"cb_nodes": "2", "cb_buffer_size": cb})
        img = f.data_image()
        assert np.array_equal(img, expected_image(patterns, f.size))

    @pytest.mark.parametrize("nagg", [1, 2, 4])
    def test_strided_roundtrip_aggregator_counts(self, nagg):
        patterns = strided_patterns(8, seed=nagg)
        _, f = run_write_all(
            patterns, {"cb_nodes": str(nagg), "cb_buffer_size": "16k"}
        )
        assert np.array_equal(f.data_image(), expected_image(patterns, f.size))

    def test_ufs_driver_even_domains(self):
        patterns = strided_patterns(8, seed=7)
        _, f = run_write_all(
            patterns, {"cb_nodes": "3", "cb_buffer_size": "8k"}, driver="ufs"
        )
        assert np.array_equal(f.data_image(), expected_image(patterns, f.size))

    def test_pattern_with_holes(self):
        # Ranks write disjoint extents leaving gaps; gaps stay zero.
        patterns = []
        for r in range(8):
            offs = np.array([r * 10 * KiB])
            lens = np.array([4 * KiB])  # 6 KiB hole after each block
            data = np.full(4 * KiB, r + 1, dtype=np.uint8)
            patterns.append(RankAccess(offs, lens, data))
        _, f = run_write_all(
            patterns,
            {"cb_nodes": "2", "cb_buffer_size": "16k", "romio_cb_write": "enable"},
        )
        img = f.data_image()
        for r in range(8):
            assert np.all(img[r * 10 * KiB : r * 10 * KiB + 4 * KiB] == r + 1)
            if r < 7:
                assert np.all(img[r * 10 * KiB + 4 * KiB : (r + 1) * 10 * KiB] == 0)

    def test_uneven_contributions(self):
        rng = np.random.default_rng(5)
        patterns = []
        pos = 0
        for r in range(8):
            length = int(rng.integers(1, 20)) * 512
            data = rng.integers(0, 256, size=length, dtype=np.uint8)
            patterns.append(RankAccess(np.array([pos]), np.array([length]), data))
            pos += length
        # rank-ordered contiguous is not interleaved -> force collective
        _, f = run_write_all(
            patterns, {"cb_nodes": "4", "cb_buffer_size": "4k", "romio_cb_write": "enable"}
        )
        assert np.array_equal(f.data_image(), expected_image(patterns, pos))

    def test_some_ranks_empty(self):
        patterns = []
        for r in range(8):
            if r % 2 == 0:
                data = np.full(KiB, r + 1, dtype=np.uint8)
                patterns.append(RankAccess(np.array([r * KiB]), np.array([KiB]), data))
            else:
                patterns.append(RankAccess.empty_access())
        _, f = run_write_all(
            patterns, {"cb_nodes": "2", "cb_buffer_size": "2k", "romio_cb_write": "enable"}
        )
        img = f.data_image()
        for r in range(0, 8, 2):
            assert np.all(img[r * KiB : (r + 1) * KiB] == r + 1)

    def test_all_ranks_empty(self):
        patterns = [RankAccess.empty_access() for _ in range(8)]
        machine, world, layer = make_cluster()

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", {"romio_cb_write": "enable"})
            n = yield from fh.write_all(patterns[ctx.rank])
            yield from fh.close()
            return n

        assert world.run(body) == [0] * 8

    def test_multiple_write_all_calls(self):
        machine, world, layer = make_cluster()
        block = 2 * KiB

        def body(ctx):
            fh = yield from layer.open(
                ctx.rank, "/g/t", {"cb_nodes": "2", "romio_cb_write": "enable"}
            )
            for call in range(3):
                base = call * 8 * block
                data = np.full(block, 10 * call + ctx.rank + 1, dtype=np.uint8)
                acc = RankAccess.contiguous(base + ctx.rank * block, block, data)
                yield from fh.write_all(acc)
            yield from fh.close()

        world.run(body)
        img = machine.pfs.lookup("/g/t").data_image()
        for call in range(3):
            for r in range(8):
                seg = img[call * 8 * block + r * block :][:block]
                assert np.all(seg == 10 * call + r + 1)


class TestDecisionLogic:
    def test_noninterleaved_automatic_goes_independent(self):
        machine, world, layer = make_cluster()
        block = 4 * KiB

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", {"romio_cb_write": "automatic"})
            data = np.full(block, ctx.rank + 1, dtype=np.uint8)
            acc = RankAccess.contiguous(ctx.rank * block, block, data)
            yield from fh.write_all(acc)
            yield from fh.close()
            return fh

        world.run(body)
        f = machine.pfs.lookup("/g/t")
        img = f.data_image()
        for r in range(8):
            assert np.all(img[r * block : (r + 1) * block] == r + 1)
        # independent path: no dissemination alltoall was profiled
        fd = layer._open_slots["/g/t"][0]
        assert all(
            p.profile.get("shuffle_all2all") == 0 for p in fd.profilers.values()
        )

    def test_cb_write_disable_forces_independent(self):
        machine, world, layer = make_cluster()
        patterns = strided_patterns(8)

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", {"romio_cb_write": "disable"})
            yield from fh.write_all(patterns[ctx.rank])
            yield from fh.close()

        world.run(body)
        f = machine.pfs.lookup("/g/t")
        assert np.array_equal(f.data_image(), expected_image(patterns, f.size))

    def test_memory_pinned_by_aggregators_only(self):
        machine, world, layer = make_cluster()
        patterns = strided_patterns(8)
        cb = 64 * KiB

        def body(ctx):
            fh = yield from layer.open(
                ctx.rank, "/g/t", {"cb_nodes": "2", "cb_buffer_size": str(cb)}
            )
            yield from fh.write_all(patterns[ctx.rank])
            yield from fh.close()

        world.run(body)
        # aggregators are ranks 0 (node 0) and 4 (node 2)
        assert machine.nodes[0].peak_pinned_bytes == cb
        assert machine.nodes[2].peak_pinned_bytes == cb
        assert machine.nodes[1].peak_pinned_bytes == 0

    def test_post_write_allreduce_synchronises(self):
        machine, world, layer = make_cluster()
        patterns = strided_patterns(8)
        ends = []

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", {"cb_nodes": "2"})
            yield from fh.write_all(patterns[ctx.rank])
            ends.append(ctx.now)
            yield from fh.close()

        world.run(body)
        assert max(ends) - min(ends) < 1e-6
