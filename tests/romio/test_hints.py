import pytest

from repro.romio.hints import HintError, Hints
from repro.units import KiB, MiB


class TestDefaults:
    def test_defaults_match_romio(self):
        h = Hints.from_info(None)
        assert h.romio_cb_write == "automatic"
        assert h.cb_buffer_size == 16 * MiB
        assert h.cb_nodes is None
        assert h.ind_wr_buffer_size == 512 * KiB
        assert h.e10_cache == "disable"
        assert not h.cache_enabled

    def test_empty_info(self):
        assert Hints.from_info({}) == Hints()


class TestTableI:
    def test_cb_write_values(self):
        for v in ("enable", "disable", "automatic"):
            assert Hints.from_info({"romio_cb_write": v}).romio_cb_write == v

    def test_cb_write_invalid(self):
        with pytest.raises(HintError):
            Hints.from_info({"romio_cb_write": "yes"})

    def test_cb_buffer_size_parses_suffix(self):
        assert Hints.from_info({"cb_buffer_size": "4m"}).cb_buffer_size == 4 * MiB

    def test_cb_buffer_size_must_be_positive(self):
        with pytest.raises(HintError):
            Hints.from_info({"cb_buffer_size": "0"})

    def test_cb_nodes(self):
        assert Hints.from_info({"cb_nodes": "64"}).cb_nodes == 64
        with pytest.raises(HintError):
            Hints.from_info({"cb_nodes": "-1"})
        with pytest.raises(HintError):
            Hints.from_info({"cb_nodes": "many"})

    def test_striping(self):
        h = Hints.from_info({"striping_unit": "4m", "striping_factor": "4"})
        assert h.striping_unit == 4 * MiB
        assert h.striping_factor == 4


class TestTableII:
    def test_cache_modes(self):
        assert Hints.from_info({"e10_cache": "enable"}).cache_enabled
        assert Hints.from_info({"e10_cache": "coherent"}).cache_enabled
        assert Hints.from_info({"e10_cache": "coherent"}).cache_coherent
        assert not Hints.from_info({"e10_cache": "disable"}).cache_enabled

    def test_cache_mode_invalid(self):
        with pytest.raises(HintError):
            Hints.from_info({"e10_cache": "on"})

    def test_flush_flags(self):
        assert Hints.from_info(
            {"e10_cache_flush_flag": "flush_immediate"}
        ).flush_immediate
        assert not Hints.from_info(
            {"e10_cache_flush_flag": "flush_onclose"}
        ).flush_immediate
        # the TBW evaluation extension
        Hints.from_info({"e10_cache_flush_flag": "flush_none"})
        with pytest.raises(HintError):
            Hints.from_info({"e10_cache_flush_flag": "whenever"})

    def test_discard_flag(self):
        assert Hints.from_info({"e10_cache_discard_flag": "enable"}).discard_on_close
        assert not Hints.from_info({"e10_cache_discard_flag": "disable"}).discard_on_close

    def test_cache_path(self):
        assert Hints.from_info({"e10_cache_path": "/nvme0"}).e10_cache_path == "/nvme0"

    def test_ind_wr_buffer_size(self):
        assert (
            Hints.from_info({"ind_wr_buffer_size": "512k"}).ind_wr_buffer_size
            == 512 * KiB
        )


class TestUnknownAndRoundtrip:
    def test_unknown_hints_ignored_but_kept(self):
        h = Hints.from_info({"romio_lustre_co_ratio": "4"})
        assert h.unknown == {"romio_lustre_co_ratio": "4"}

    def test_roundtrip_through_info(self):
        original = {
            "e10_cache": "enable",
            "e10_cache_flush_flag": "flush_immediate",
            "cb_buffer_size": str(4 * MiB),
            "cb_nodes": "8",
        }
        h1 = Hints.from_info(original)
        h2 = Hints.from_info(h1.to_info())
        assert h1 == h2

    def test_case_insensitive_values(self):
        assert Hints.from_info({"e10_cache": "ENABLE"}).cache_enabled
