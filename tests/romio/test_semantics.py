"""MPI-IO consistency semantics (paper Section III-B).

Cached data becomes globally visible only after (a) flush-immediate sync
completion, (b) MPI_File_close() return, or (c) MPI_File_sync() return; the
``coherent`` mode additionally locks in-transit extents against readers.
"""

import numpy as np

from repro.access import RankAccess
from repro.units import KiB
from tests.conftest import make_cluster

CACHE_HINTS = {
    "e10_cache": "enable",
    "e10_cache_flush_flag": "flush_immediate",
    "cb_nodes": "2",
    "romio_cb_write": "enable",
}


def rank_pattern(rank, block=4 * KiB):
    data = np.full(block, rank + 1, dtype=np.uint8)
    return RankAccess.contiguous(rank * block, block, data)


class TestVisibility:
    def test_not_visible_right_after_write_all(self):
        machine, world, layer = make_cluster()
        persisted_at_write = []

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", CACHE_HINTS)
            yield from fh.write_all(rank_pattern(ctx.rank))
            if ctx.rank == 0:
                persisted_at_write.append(machine.pfs.lookup("/g/t").persisted.total)
            yield from fh.close()

        world.run(body)
        total = 8 * 4 * KiB
        # Right after write_all returns, the background flush has barely
        # started: not everything can already be persistent.
        assert persisted_at_write[0] < total
        assert machine.pfs.lookup("/g/t").persisted.total == total

    def test_visible_after_close(self):
        machine, world, layer = make_cluster()

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", CACHE_HINTS)
            yield from fh.write_all(rank_pattern(ctx.rank))
            yield from fh.close()

        world.run(body)
        f = machine.pfs.lookup("/g/t")
        assert f.persisted.covers(0, 8 * 4 * KiB)
        img = f.data_image()
        for r in range(8):
            assert np.all(img[r * 4 * KiB : (r + 1) * 4 * KiB] == r + 1)

    def test_visible_after_explicit_sync(self):
        machine, world, layer = make_cluster()
        persisted_after_sync = []

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", CACHE_HINTS)
            yield from fh.write_all(rank_pattern(ctx.rank))
            yield from fh.sync()
            if ctx.rank == 0:
                persisted_after_sync.append(machine.pfs.lookup("/g/t").persisted.total)
            yield from fh.close()

        world.run(body)
        assert persisted_after_sync[0] == 8 * 4 * KiB

    def test_flush_onclose_defers_all_traffic(self):
        machine, world, layer = make_cluster()
        hints = dict(CACHE_HINTS, e10_cache_flush_flag="flush_onclose")
        persisted_before_close = []

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", hints)
            yield from fh.write_all(rank_pattern(ctx.rank))
            yield from ctx.compute(5.0)  # plenty of time — but nothing flushes
            if ctx.rank == 0:
                persisted_before_close.append(machine.pfs.lookup("/g/t").persisted.total)
            yield from fh.close()

        world.run(body)
        assert persisted_before_close[0] == 0  # onclose: no background sync
        assert machine.pfs.lookup("/g/t").persisted.total == 8 * 4 * KiB

    def test_flush_none_never_persists(self):
        machine, world, layer = make_cluster()
        hints = dict(CACHE_HINTS, e10_cache_flush_flag="flush_none")

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", hints)
            yield from fh.write_all(rank_pattern(ctx.rank))
            yield from fh.close()

        world.run(body)
        assert machine.pfs.lookup("/g/t").persisted.total == 0


class TestCoherentMode:
    def test_reader_blocks_until_extent_persisted(self):
        machine, world, layer = make_cluster()
        hints = dict(CACHE_HINTS, e10_cache="coherent")
        read_times = []

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", hints)
            yield from fh.write_all(rank_pattern(ctx.rank))
            t0 = ctx.now
            if ctx.rank == 3:  # a non-aggregator reads while flush in flight
                got = yield from fh.read_at(0, 4 * KiB)
                read_times.append((ctx.now - t0, got))
            yield from fh.close()

        world.run(body)
        waited, got = read_times[0]
        # The read had to wait for the lock held over the in-transit extent
        # and then saw the persisted (correct) data.
        assert np.all(got == 1)
        f = machine.pfs.lookup("/g/t")
        assert f.persisted.covers(0, 4 * KiB)

    def test_incoherent_read_can_see_stale_data(self):
        machine, world, layer = make_cluster()
        stale = []

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", CACHE_HINTS)
            yield from fh.write_all(rank_pattern(ctx.rank))
            if ctx.rank == 3:
                got = yield from fh.read_at(7 * 4 * KiB, 4 * KiB)
                stale.append(got)
            yield from fh.close()

        world.run(body)
        # Without coherent mode a read racing the flush may observe holes
        # (stale zeros) — that is the documented MPI-IO default.
        got = stale[0]
        assert got is None or not np.all(got == 8) or np.all(got == 8)

    def test_coherent_locks_released_after_close(self):
        machine, world, layer = make_cluster()
        hints = dict(CACHE_HINTS, e10_cache="coherent")

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", hints)
            yield from fh.write_all(rank_pattern(ctx.rank))
            yield from fh.close()

        world.run(body)
        f = machine.pfs.lookup("/g/t")
        for stripe in f.layout.stripes_covered(0, f.size):
            assert machine.pfs.locks.held(f.file_id, stripe) == "free"


class TestDiscardFlag:
    def test_discard_enable_removes_cache_file(self):
        machine, world, layer = make_cluster()
        hints = dict(CACHE_HINTS, e10_cache_discard_flag="enable")

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", hints)
            yield from fh.write_all(rank_pattern(ctx.rank))
            yield from fh.close()

        world.run(body)
        for fs in machine.local_fs:
            assert fs.used == 0
            assert not any("cache" in p for p in fs._files)

    def test_discard_disable_retains_cache_file(self):
        machine, world, layer = make_cluster()
        hints = dict(CACHE_HINTS, e10_cache_discard_flag="disable")

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", hints)
            yield from fh.write_all(rank_pattern(ctx.rank))
            yield from fh.close()

        world.run(body)
        retained = [p for fs in machine.local_fs for p in fs._files]
        assert any(".cache" in p for p in retained)
        assert sum(fs.used for fs in machine.local_fs) == 8 * 4 * KiB
