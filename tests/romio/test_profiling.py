import pytest

from repro.romio.profiling import (
    PHASES,
    PhaseProfile,
    Profiler,
    aggregate_max,
    aggregate_mean,
)
from repro.sim.core import Simulator


class TestPhaseProfile:
    def test_accumulates(self):
        p = PhaseProfile()
        p.add("write", 1.0)
        p.add("write", 0.5)
        assert p.get("write") == 1.5
        assert p.total == 1.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PhaseProfile().add("write", -1)

    def test_missing_phase_zero(self):
        assert PhaseProfile().get("comm") == 0.0

    def test_merge(self):
        a = PhaseProfile({"write": 1.0})
        b = PhaseProfile({"write": 2.0, "comm": 3.0})
        merged = a.merged_with(b)
        assert merged.get("write") == 3.0
        assert merged.get("comm") == 3.0
        assert a.get("write") == 1.0  # originals untouched


class TestProfiler:
    def test_lap_measures_sim_time(self):
        sim = Simulator()
        prof = Profiler(sim, rank=0)

        def proc():
            t0 = prof.mark()
            yield sim.timeout(2.5)
            prof.lap("write", t0)

        sim.run(until=sim.process(proc()))
        assert prof.profile.get("write") == pytest.approx(2.5)


class TestAggregation:
    def test_max_takes_straggler(self):
        profiles = [
            PhaseProfile({"write": 1.0, "comm": 5.0}),
            PhaseProfile({"write": 3.0, "comm": 2.0}),
        ]
        agg = aggregate_max(profiles)
        assert agg.get("write") == 3.0
        assert agg.get("comm") == 5.0

    def test_mean(self):
        profiles = [PhaseProfile({"write": 1.0}), PhaseProfile({"write": 3.0})]
        assert aggregate_mean(profiles).get("write") == 2.0

    def test_empty(self):
        assert aggregate_mean([]).total == 0.0
        assert aggregate_max([]).total == 0.0

    def test_phase_names_cover_paper_legend(self):
        for name in ("shuffle_all2all", "comm", "write", "post_write", "not_hidden_sync"):
            assert name in PHASES
