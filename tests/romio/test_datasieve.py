import numpy as np

from repro.access import RankAccess
from repro.units import KiB
from tests.conftest import make_cluster


def run_independent(pattern_fn, hints=None, nprocs=(4, 2)):
    machine, world, layer = make_cluster(*nprocs)
    base = {"romio_cb_write": "disable", "ind_wr_buffer_size": "8k"}
    base.update(hints or {})

    def body(ctx):
        fh = yield from layer.open(ctx.rank, "/g/t", base)
        n = yield from fh.write_strided(pattern_fn(ctx.rank))
        yield from fh.close()
        return n

    returns = world.run(body)
    return machine, machine.pfs.lookup("/g/t"), returns


class TestContiguousFastPath:
    def test_single_extent(self):
        def pattern(rank):
            data = np.full(KiB, rank + 1, dtype=np.uint8)
            return RankAccess.contiguous(rank * KiB, KiB, data)

        _, f, returns = run_independent(pattern)
        img = f.data_image()
        for r in range(8):
            assert np.all(img[r * KiB : (r + 1) * KiB] == r + 1)
        assert returns == [KiB] * 8

    def test_dense_window_skips_rmw(self):
        # adjacent extents fully covering their windows: direct write path
        def pattern(rank):
            offs = np.array([rank * 4 * KiB, rank * 4 * KiB + 2 * KiB])
            lens = np.array([2 * KiB, 2 * KiB])
            data = np.full(4 * KiB, rank + 1, dtype=np.uint8)
            return RankAccess(offs, lens, data)

        machine, f, _ = run_independent(pattern)
        img = f.data_image()
        for r in range(8):
            assert np.all(img[r * 4 * KiB : (r + 1) * 4 * KiB] == r + 1)


class TestSieving:
    def test_holes_trigger_rmw_and_preserve_existing(self):
        # interleaved strided extents across ranks: RMW under locks must not
        # lose any rank's bytes.
        def pattern(rank):
            offs = np.array([rank * KiB + k * 8 * KiB for k in range(4)])
            lens = np.full(4, KiB)
            data = np.full(4 * KiB, rank + 1, dtype=np.uint8)
            return RankAccess(offs, lens, data)

        _, f, _ = run_independent(pattern)
        img = f.data_image()
        for r in range(8):
            for k in range(4):
                seg = img[r * KiB + k * 8 * KiB :][: KiB]
                assert np.all(seg == r + 1), (r, k)

    def test_small_sieve_buffer_many_windows(self):
        def pattern(rank):
            offs = np.array([rank * KiB + k * 8 * KiB for k in range(4)])
            lens = np.full(4, KiB)
            data = np.full(4 * KiB, rank + 1, dtype=np.uint8)
            return RankAccess(offs, lens, data)

        _, f, _ = run_independent(pattern, hints={"ind_wr_buffer_size": "2k"})
        img = f.data_image()
        for r in range(8):
            for k in range(4):
                assert np.all(img[r * KiB + k * 8 * KiB :][: KiB] == r + 1)

    def test_empty_access_returns_zero(self):
        def pattern(rank):
            return RankAccess.empty_access()

        _, f, returns = run_independent(pattern)
        assert returns == [0] * 8

    def test_locks_used_for_rmw(self):
        def pattern(rank):
            # two extents with a hole inside one 8 KiB sieve window -> RMW
            offs = np.array([rank * 32 * KiB, rank * 32 * KiB + 3 * KiB])
            lens = np.full(2, KiB)
            data = np.full(2 * KiB, rank + 1, dtype=np.uint8)
            return RankAccess(offs, lens, data)

        machine, _, _ = run_independent(pattern)
        assert machine.pfs.locks.acquires > 0
