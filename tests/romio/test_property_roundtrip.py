"""Property-based end-to-end verification of the collective write.

Hypothesis generates arbitrary disjoint per-rank extent sets with random
payloads; the full stack (two-phase exchange, optional cache + sync thread,
striped PFS) must reproduce the expected file image byte-for-byte under any
aggregator count / buffer size / hint combination.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access import RankAccess
from tests.conftest import make_cluster

NPROCS = 8
SPACE = 64 * 1024  # file offsets live in [0, 64k)


@st.composite
def rank_patterns(draw):
    """Disjoint extents across all ranks, some with data, random placement."""
    n_extents = draw(st.integers(1, 12))
    cells = draw(
        st.lists(
            st.integers(0, SPACE // 512 - 1), min_size=n_extents,
            max_size=n_extents, unique=True,
        )
    )
    owners = draw(st.lists(st.integers(0, NPROCS - 1), min_size=n_extents, max_size=n_extents))
    rng_seed = draw(st.integers(0, 2**16))
    per_rank: dict[int, list[tuple[int, int]]] = {r: [] for r in range(NPROCS)}
    rng = np.random.default_rng(rng_seed)
    for cell, owner in zip(cells, owners):
        start = cell * 512
        length = int(rng.integers(1, 513))
        per_rank[owner].append((start, length))
    patterns = []
    for r in range(NPROCS):
        if per_rank[r]:
            offs = np.array([p[0] for p in per_rank[r]], dtype=np.int64)
            lens = np.array([p[1] for p in per_rank[r]], dtype=np.int64)
            data = rng.integers(0, 256, size=int(lens.sum()), dtype=np.uint8)
            patterns.append(RankAccess(offs, lens, data))
        else:
            patterns.append(RankAccess.empty_access())
    return patterns


def expected(patterns):
    size = max((a.end_offset + 1 for a in patterns if not a.empty), default=0)
    img = np.zeros(size, dtype=np.uint8)
    for a in patterns:
        if a.empty:
            continue
        pos = 0
        for off, length in zip(a.offsets, a.lengths):
            img[off : off + length] = a.data[pos : pos + length]
            pos += length
    return img


def run(patterns, hints):
    machine, world, layer = make_cluster()

    def body(ctx):
        fh = yield from layer.open(ctx.rank, "/g/t", hints)
        yield from fh.write_all(patterns[ctx.rank])
        yield from fh.close()

    world.run(body)
    f = machine.pfs.lookup("/g/t")
    img = f.data_image()
    exp = expected(patterns)
    return img, exp


@settings(max_examples=25, deadline=None)
@given(rank_patterns(), st.sampled_from(["1", "2", "4"]), st.sampled_from(["4k", "16k", "64k"]))
def test_collective_write_roundtrip(patterns, cb_nodes, cb_size):
    hints = {
        "cb_nodes": cb_nodes,
        "cb_buffer_size": cb_size,
        "romio_cb_write": "enable",
        "striping_unit": "8k",
    }
    img, exp = run(patterns, hints)
    assert np.array_equal(img, exp)


@settings(max_examples=20, deadline=None)
@given(rank_patterns(), st.sampled_from(["flush_immediate", "flush_onclose"]))
def test_cached_write_roundtrip(patterns, flush_flag):
    hints = {
        "cb_nodes": "2",
        "cb_buffer_size": "16k",
        "romio_cb_write": "enable",
        "e10_cache": "enable",
        "e10_cache_flush_flag": flush_flag,
        "ind_wr_buffer_size": "4k",
    }
    img, exp = run(patterns, hints)
    assert np.array_equal(img, exp)
