"""Consistency between the two exchange fidelities.

The model engine replaces per-message simulation with precomputed costs; it
must still write exactly the same byte ranges, run the same number of
rounds, and agree with flow fidelity on wall-clock within a small factor.
"""

import numpy as np
import pytest

from repro.access import RankAccess
from repro.units import KiB
from tests.conftest import make_cluster


def strided(nprocs, block=4 * KiB, reps=4):
    out = []
    for r in range(nprocs):
        offs = np.array([r * block + k * nprocs * block for k in range(reps)])
        out.append(RankAccess(offs, np.full(reps, block)))
    return out


def run(mode, hints, patterns):
    machine, world, layer = make_cluster(exchange=mode)

    def body(ctx):
        fh = yield from layer.open(ctx.rank, "/g/t", hints)
        t0 = ctx.now
        yield from fh.write_all(patterns[ctx.rank])
        dt = ctx.now - t0
        yield from fh.close()
        return dt

    times = world.run(body)
    fd = layer._open_slots["/g/t"][0]
    return machine, fd, max(times)


HINTS = {"cb_nodes": "2", "cb_buffer_size": "16k", "romio_cb_write": "enable"}


class TestEquivalence:
    def test_same_rounds(self):
        patterns = strided(8)
        _, fd_flow, _ = run("flow", HINTS, patterns)
        _, fd_model, _ = run("model", HINTS, patterns)
        assert fd_flow._calls[0].ntimes == fd_model._calls[0].ntimes

    def test_same_domains(self):
        patterns = strided(8)
        _, fd_flow, _ = run("flow", HINTS, patterns)
        _, fd_model, _ = run("model", HINTS, patterns)
        assert fd_flow._calls[0].domains == fd_model._calls[0].domains

    def test_same_bytes_persisted(self):
        patterns = strided(8)
        m_flow, _, _ = run("flow", HINTS, patterns)
        m_model, _, _ = run("model", HINTS, patterns)
        f1 = m_flow.pfs.lookup("/g/t")
        f2 = m_model.pfs.lookup("/g/t")
        assert f1.persisted.total == f2.persisted.total
        assert list(f1.persisted) == list(f2.persisted)

    def test_same_coverage_with_holes(self):
        patterns = []
        for r in range(8):
            offs = np.array([r * 10 * KiB])
            patterns.append(RankAccess(offs, np.array([4 * KiB])))
        m_flow, _, _ = run("flow", HINTS, patterns)
        m_model, _, _ = run("model", HINTS, patterns)
        assert list(m_flow.pfs.lookup("/g/t").persisted) == list(
            m_model.pfs.lookup("/g/t").persisted
        )

    def test_wallclock_within_factor(self):
        patterns = strided(8, block=16 * KiB, reps=8)
        _, _, t_flow = run("flow", HINTS, patterns)
        _, _, t_model = run("model", HINTS, patterns)
        assert t_model == pytest.approx(t_flow, rel=1.5)

    def test_model_sends_match_flow_slices(self):
        """The vectorised per-round send matrix equals per-slice computation."""
        patterns = strided(8)
        _, fd_model, _ = run("model", HINTS, patterns)
        call = fd_model._calls[0]
        cb = 16 * KiB
        for r in range(call.ntimes):
            for rank in range(8):
                for i, d in enumerate(call.domains):
                    if d.size <= 0:
                        continue
                    lo = d.start + r * cb
                    hi = min(d.end, lo + cb)
                    expected = patterns[rank].bytes_in_window(lo, hi) if hi > lo else 0
                    assert call.sends[rank, i, r] == expected, (rank, i, r)
