import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.romio.aggregation import (
    FileDomain,
    domains_are_stripe_aligned,
    partition_even,
    partition_stripe_aligned,
    select_aggregators,
)


class TestSelection:
    def test_one_per_node(self):
        aggs = select_aggregators(num_nodes=4, procs_per_node=8, cb_nodes=None)
        assert aggs == [0, 8, 16, 24]

    def test_spread_placement(self):
        aggs = select_aggregators(num_nodes=64, procs_per_node=8, cb_nodes=8, spread=True)
        nodes = [a // 8 for a in aggs]
        assert nodes == [0, 8, 16, 24, 32, 40, 48, 56]

    def test_packed_placement(self):
        aggs = select_aggregators(num_nodes=64, procs_per_node=8, cb_nodes=8, spread=False)
        assert [a // 8 for a in aggs] == list(range(8))

    def test_cb_nodes_capped_at_num_nodes(self):
        aggs = select_aggregators(num_nodes=4, procs_per_node=2, cb_nodes=100)
        assert len(aggs) == 4

    def test_invalid_cb_nodes(self):
        with pytest.raises(ValueError):
            select_aggregators(4, 2, 0)

    def test_at_most_one_per_node(self):
        aggs = select_aggregators(16, 4, 10)
        nodes = [a // 4 for a in aggs]
        assert len(set(nodes)) == len(nodes)


class TestEvenPartition:
    def test_exact_division(self):
        doms = partition_even(0, 99, [10, 20])
        assert doms == [FileDomain(10, 0, 50), FileDomain(20, 50, 100)]

    def test_remainder_spread_to_front(self):
        doms = partition_even(0, 100, [1, 2, 3])  # 101 bytes over 3
        assert [d.size for d in doms] == [34, 34, 33]
        assert doms[0].start == 0
        assert doms[-1].end == 101

    def test_contiguous_no_gaps(self):
        doms = partition_even(1000, 1999, [0, 1, 2, 3])
        for a, b in zip(doms, doms[1:]):
            assert a.end == b.start
        assert doms[0].start == 1000
        assert doms[-1].end == 2000

    def test_empty_region(self):
        doms = partition_even(10, 5, [0, 1])
        assert all(d.size == 0 for d in doms)


class TestAlignedPartition:
    def test_boundaries_on_stripes(self):
        doms = partition_stripe_aligned(0, 1000 - 1, [0, 1, 2], stripe_size=100)
        for d in doms[:-1]:
            assert d.end % 100 == 0

    def test_no_stripe_shared(self):
        doms = partition_stripe_aligned(0, 16 * 100 - 1, [0, 1, 2, 3], stripe_size=100)
        assert domains_are_stripe_aligned(doms, 100)

    def test_even_can_share_stripes(self):
        # 10 stripes of 100 over 3 aggregators: even division splits stripes.
        doms = partition_even(0, 999, [0, 1, 2])
        assert not domains_are_stripe_aligned(doms, 100)

    def test_more_aggregators_than_stripes(self):
        doms = partition_stripe_aligned(0, 299, [0, 1, 2, 3, 4], stripe_size=100)
        nonempty = [d for d in doms if d.size > 0]
        assert len(nonempty) == 3
        assert sum(d.size for d in nonempty) == 300

    def test_unaligned_region_endpoints(self):
        doms = partition_stripe_aligned(50, 949, [0, 1], stripe_size=100)
        assert doms[0].start == 50
        assert doms[-1].end == 950
        assert doms[0].end % 100 == 0

    def test_invalid_stripe(self):
        with pytest.raises(ValueError):
            partition_stripe_aligned(0, 10, [0], 0)


regions = st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)).map(
    lambda t: (min(t), max(t))
)


@settings(max_examples=200, deadline=None)
@given(regions, st.integers(1, 8), st.integers(1, 64))
def test_partitions_tile_region(region, naggs, stripe):
    start, end = region
    aggs = list(range(naggs))
    for doms in (
        partition_even(start, end, aggs),
        partition_stripe_aligned(start, end, aggs, stripe),
    ):
        nonempty = [d for d in doms if d.size > 0]
        total = end - start + 1
        assert sum(d.size for d in nonempty) == total
        pos = start
        for d in nonempty:
            assert d.start == pos
            pos = d.end
        assert pos == end + 1


@settings(max_examples=200, deadline=None)
@given(regions, st.integers(1, 8), st.integers(1, 64))
def test_aligned_never_shares_stripes(region, naggs, stripe):
    start, end = region
    doms = partition_stripe_aligned(start, end, list(range(naggs)), stripe)
    assert domains_are_stripe_aligned(doms, stripe)
