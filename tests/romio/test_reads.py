import numpy as np

from repro.access import RankAccess
from repro.units import KiB
from tests.conftest import make_cluster


def write_then(read_body, write_hints=None):
    """All ranks write their strided pattern, then run read_body."""
    machine, world, layer = make_cluster()
    hints = {"cb_nodes": "2", "romio_cb_write": "enable", "ind_wr_buffer_size": "8k"}
    hints.update(write_hints or {})
    patterns = []
    for r in range(8):
        offs = np.array([r * KiB + k * 8 * KiB for k in range(3)])
        lens = np.full(3, KiB)
        data = np.full(3 * KiB, r + 1, dtype=np.uint8)
        patterns.append(RankAccess(offs, lens, data))

    def body(ctx):
        fh = yield from layer.open(ctx.rank, "/g/t", hints)
        yield from fh.write_all(patterns[ctx.rank])
        yield from fh.sync()
        result = yield from read_body(ctx, fh, patterns)
        yield from fh.close()
        return result

    return world.run(body), patterns


class TestReadStrided:
    def test_read_back_own_pattern(self):
        def reader(ctx, fh, patterns):
            got = yield from fh.read_strided(patterns[ctx.rank])
            return got

        results, patterns = write_then(reader)
        for r, got in enumerate(results):
            assert np.array_equal(got, patterns[r].data)

    def test_read_other_ranks_pattern(self):
        def reader(ctx, fh, patterns):
            peer = (ctx.rank + 3) % 8
            got = yield from fh.read_strided(patterns[peer])
            return (peer, got)

        results, patterns = write_then(reader)
        for peer, got in results:
            assert np.array_equal(got, patterns[peer].data)

    def test_read_with_holes_gathers_correctly(self):
        def reader(ctx, fh, patterns):
            # read a window covering several ranks' interleaved pieces
            offs = np.array([0, 2 * KiB, 5 * KiB])
            lens = np.array([KiB, KiB, KiB])
            acc = RankAccess(offs, lens)
            got = yield from fh.read_strided(acc)
            return got

        results, _ = write_then(reader)
        got = results[0]
        assert np.all(got[0:KiB] == 1)  # rank 0's first block
        assert np.all(got[KiB : 2 * KiB] == 3)  # offset 2KiB -> rank 2
        assert np.all(got[2 * KiB :] == 6)  # offset 5KiB -> rank 5

    def test_empty_access(self):
        def reader(ctx, fh, patterns):
            got = yield from fh.read_strided(RankAccess.empty_access())
            return got

        results, _ = write_then(reader)
        assert all(r is None for r in results)


class TestReadAll:
    def test_collective_read_synchronises(self):
        exit_times = []

        def reader(ctx, fh, patterns):
            if ctx.rank == 0:
                yield from ctx.compute(0.3)  # late arriver
            got = yield from fh.read_all(patterns[ctx.rank])
            exit_times.append(ctx.now)
            return got

        results, patterns = write_then(reader)
        for r, got in enumerate(results):
            assert np.array_equal(got, patterns[r].data)
        assert max(exit_times) - min(exit_times) < 1e-6

    def test_read_all_after_cached_write_sees_persistent_data(self):
        def reader(ctx, fh, patterns):
            got = yield from fh.read_all(patterns[ctx.rank])
            return got

        results, patterns = write_then(
            reader,
            write_hints={
                "e10_cache": "enable",
                "e10_cache_flush_flag": "flush_immediate",
                "ind_wr_buffer_size": "8k",
            },
        )
        # fh.sync() in the driver guarantees global visibility before reads
        for r, got in enumerate(results):
            assert np.array_equal(got, patterns[r].data)
