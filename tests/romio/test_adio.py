import numpy as np
import pytest

from repro.romio.adio import BeeGFSDriver, UFSDriver, get_driver
from repro.romio.aggregation import domains_are_stripe_aligned
from repro.sim.core import SimError
from repro.units import KiB
from tests.conftest import make_cluster


class TestRegistry:
    def test_known_drivers(self):
        assert isinstance(get_driver("ufs"), UFSDriver)
        assert isinstance(get_driver("beegfs"), BeeGFSDriver)

    def test_unknown_driver(self):
        with pytest.raises(SimError, match="unknown ADIO driver"):
            get_driver("lustre2000")


def open_fd(layer, world, hints):
    holder = {}

    def body(ctx):
        fh = yield from layer.open(ctx.rank, "/g/t", hints)
        holder[ctx.rank] = fh
        yield from fh.close()

    world.run(body)
    return holder[0].fd


class TestPartitioning:
    def test_beegfs_aligns_to_stripes(self):
        machine, world, layer = make_cluster(driver="beegfs")
        fd = open_fd(layer, world, {"striping_unit": "16k", "cb_nodes": "3"})
        domains = fd.driver.partition_domains(fd, 0, 200 * KiB - 1)
        assert domains_are_stripe_aligned(domains, 16 * KiB)

    def test_ufs_divides_evenly(self):
        machine, world, layer = make_cluster(driver="ufs")
        fd = open_fd(layer, world, {"cb_nodes": "4"})
        domains = fd.driver.partition_domains(fd, 0, 399)
        assert [d.size for d in domains] == [100, 100, 100, 100]

    def test_locking_policy_differs(self):
        _, world_u, layer_u = make_cluster(driver="ufs")
        fd_u = open_fd(layer_u, world_u, {})
        _, world_b, layer_b = make_cluster(driver="beegfs")
        fd_b = open_fd(layer_b, world_b, {})
        assert fd_u.driver.write_locking(fd_u) is True
        assert fd_b.driver.write_locking(fd_b) is False


class TestCacheHookPoints:
    def test_open_cache_only_for_aggregators(self):
        machine, world, layer = make_cluster()
        hints = {"e10_cache": "enable", "cb_nodes": "2"}
        states = {}

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", hints)
            states[ctx.rank] = fh.fd.cache_state(ctx.rank)
            yield from fh.close()

        world.run(body)
        with_cache = [r for r, s in states.items() if s is not None]
        assert len(with_cache) == 2
        # aggregators are node-leading ranks
        assert all(r % 2 == 0 for r in with_cache)

    def test_write_contig_direct_when_no_cache_state(self):
        machine, world, layer = make_cluster()

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", {})
            if ctx.rank == 3:  # a non-aggregator-style direct write
                data = np.arange(100, dtype=np.uint8)
                yield from fh.fd.driver.write_contig(fh.fd, 3, 0, 100, data)
            yield from fh.close()

        world.run(body)
        f = machine.pfs.lookup("/g/t")
        assert f.persisted.covers(0, 100)

    def test_flush_noop_without_cache(self):
        machine, world, layer = make_cluster()

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", {})
            # Must not raise; None means nothing to wait on.
            assert fh.fd.driver.flush(fh.fd, ctx.rank) is None
            yield from fh.close()
            return True

        assert all(world.run(body))
