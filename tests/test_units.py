import pytest

from repro.units import GiB, KiB, MiB, fmt_bw, fmt_size, parse_size


class TestParseSize:
    def test_plain_int(self):
        assert parse_size(4096) == 4096

    def test_zero(self):
        assert parse_size(0) == 0

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4m", 4 * MiB),
            ("4M", 4 * MiB),
            ("4MB", 4 * MiB),
            ("4MiB", 4 * MiB),
            ("512k", 512 * KiB),
            ("512 KiB", 512 * KiB),
            ("1g", GiB),
            ("2.5m", int(2.5 * MiB)),
            ("123", 123),
            ("0b", 0),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "m", "4x", "4mmm", "--4", "4..5m"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_negative_int(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_negative_string(self):
        with pytest.raises(ValueError):
            parse_size("-4m")

    def test_bool_rejected(self):
        with pytest.raises(ValueError):
            parse_size(True)


class TestFormat:
    def test_fmt_size_bytes(self):
        assert fmt_size(17) == "17B"

    def test_fmt_size_mib(self):
        assert fmt_size(4 * MiB) == "4.0MiB"

    def test_fmt_size_gib(self):
        assert fmt_size(3 * GiB) == "3.0GiB"

    def test_fmt_bw_gib(self):
        assert "GiB/s" in fmt_bw(2 * GiB)

    def test_fmt_bw_mib(self):
        assert "MiB/s" in fmt_bw(100 * MiB)
