
from repro.config import deep_er_testbed, small_testbed
from repro.machine import Machine
from repro.pfs.filesystem import ParallelFileSystem


class TestMachine:
    def test_composition(self):
        m = Machine(small_testbed(4, 2))
        assert len(m.nodes) == 4
        assert len(m.local_fs) == 4
        assert len(m.pfs.servers) == 4
        assert m.config.num_ranks == 8

    def test_fabric_endpoints_cover_servers_and_mds(self):
        cfg = small_testbed(4, 2)
        assert ParallelFileSystem.fabric_endpoints(cfg) == 4 + 4 + 1
        m = Machine(cfg)
        assert m.pfs.servers[-1].fabric_node == 7
        assert m.pfs.mds.fabric_node == 8

    def test_pfs_client_cached_per_rank(self):
        m = Machine(small_testbed())
        assert m.pfs_client(3) is m.pfs_client(3)
        assert m.pfs_client(3) is not m.pfs_client(4)

    def test_client_node_mapping(self):
        m = Machine(small_testbed(4, 2))
        assert m.pfs_client(0).node_id == 0
        assert m.pfs_client(7).node_id == 3

    def test_local_fs_of_rank(self):
        m = Machine(small_testbed(4, 2))
        assert m.local_fs_of_rank(0) is m.local_fs[0]
        assert m.local_fs_of_rank(5) is m.local_fs[2]

    def test_deep_er_shape(self):
        cfg = deep_er_testbed()
        assert cfg.num_nodes == 64
        assert cfg.procs_per_node == 8
        assert cfg.num_ranks == 512
        assert cfg.pfs.num_data_servers == 4

    def test_config_scaled_override(self):
        cfg = deep_er_testbed(seed=7, flush_batch_chunks=4)
        assert cfg.seed == 7
        assert cfg.flush_batch_chunks == 4
        # original defaults untouched (frozen dataclass semantics)
        assert deep_er_testbed().seed == 2016


class TestTracer:
    def test_disabled_by_default(self):
        m = Machine(small_testbed())
        m.tracer.emit(0.0, "x", "y", detail=1)
        assert len(m.tracer.records) == 0

    def test_enabled_records_and_filters(self):
        m = Machine(small_testbed(), trace=True)
        m.tracer.emit(1.0, "srv", "write", nbytes=10)
        m.tracer.emit(2.0, "srv", "read")
        m.tracer.emit(3.0, "mds", "write")
        assert len(m.tracer.records) == 3
        assert len(list(m.tracer.filter(component="srv"))) == 2
        assert len(list(m.tracer.filter(event="write"))) == 2
        only = list(m.tracer.filter(component="srv", event="write"))
        assert only[0].detail == {"nbytes": 10}
        m.tracer.clear()
        assert len(m.tracer.records) == 0
