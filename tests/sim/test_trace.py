"""Tracer ring buffer, record cap, and Chrome-trace export."""

import json

from repro.sim.trace import Tracer


class TestBasics:
    def test_disabled_tracer_records_nothing(self):
        t = Tracer()
        t.emit(0.1, "dev", "read", nbytes=4096)
        assert len(t.records) == 0

    def test_enabled_tracer_keeps_order(self):
        t = Tracer(enabled=True)
        t.emit(0.1, "dev", "read")
        t.emit(0.2, "net", "flow")
        assert [r.event for r in t.records] == ["read", "flow"]
        assert t.dropped == 0

    def test_filter_by_component_and_event(self):
        t = Tracer(enabled=True)
        t.emit(0.1, "dev", "read")
        t.emit(0.2, "dev", "write")
        t.emit(0.3, "net", "read")
        assert len(list(t.filter(component="dev"))) == 2
        assert len(list(t.filter(event="read"))) == 2
        assert len(list(t.filter(component="net", event="read"))) == 1


class TestMaxRecords:
    def test_cap_keeps_most_recent(self):
        t = Tracer(enabled=True, max_records=3)
        for i in range(5):
            t.emit(float(i), "c", f"e{i}")
        assert [r.event for r in t.records] == ["e2", "e3", "e4"]
        assert t.dropped == 2

    def test_under_cap_drops_nothing(self):
        t = Tracer(enabled=True, max_records=10)
        t.emit(0.0, "c", "e")
        assert t.dropped == 0
        assert len(t.records) == 1

    def test_clear_resets_dropped(self):
        t = Tracer(enabled=True, max_records=1)
        t.emit(0.0, "c", "a")
        t.emit(0.1, "c", "b")
        assert t.dropped == 1
        t.clear()
        assert t.dropped == 0
        assert len(t.records) == 0


class TestChromeExport:
    def test_event_shape(self):
        t = Tracer(enabled=True)
        t.emit(0.5, "faults", "ssd_io_error", node=0, nbytes=8192)
        doc = t.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["dropped_records"] == 0
        (ev,) = doc["traceEvents"]
        assert ev["name"] == "ssd_io_error"
        assert ev["cat"] == "faults"
        assert ev["ph"] == "i"
        assert ev["ts"] == 0.5 * 1e6  # seconds -> microseconds
        assert ev["args"] == {"node": 0, "nbytes": 8192}

    def test_dropped_count_exported(self):
        t = Tracer(enabled=True, max_records=1)
        t.emit(0.0, "c", "a")
        t.emit(0.1, "c", "b")
        assert t.to_chrome_trace()["otherData"]["dropped_records"] == 1

    def test_write_round_trips_through_json(self, tmp_path):
        t = Tracer(enabled=True)
        t.emit(1.25, "sync", "chunk", offset=0, nbytes=65536)
        out = tmp_path / "trace.json"
        t.write_chrome_trace(str(out))
        doc = json.loads(out.read_text())
        assert doc["traceEvents"][0]["name"] == "chunk"
        assert doc["traceEvents"][0]["ts"] == 1.25e6
