"""Scheduler edge cases: both engines, plus the slotted internals.

The behavioural tests run against both registered engines (the slotted
default and the ``heapq`` reference) — the identity contract says any
observable difference between them is a bug.  The CalendarQueue tests and
the differential test target the slotted engine's internals directly.
"""

import heapq
import random

import pytest

from repro.sim.core import (
    ENGINE_KINDS,
    CalendarQueue,
    Interrupt,
    SimError,
    create_simulator,
    default_engine_kind,
)


@pytest.fixture(params=sorted(ENGINE_KINDS))
def sim(request):
    return create_simulator(request.param)


class TestEngineSelection:
    def test_registry_kinds(self):
        assert set(ENGINE_KINDS) == {"heapq", "slotted"}
        for kind, cls in ENGINE_KINDS.items():
            assert create_simulator(kind).kind == kind
            assert cls.kind == kind

    def test_default_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert default_engine_kind() == "slotted"
        monkeypatch.setenv("REPRO_ENGINE", "heapq")
        assert default_engine_kind() == "heapq"
        assert create_simulator().kind == "heapq"

    def test_unknown_kind_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "bogus")
        with pytest.raises(SimError):
            create_simulator()


class TestSameInstantOrdering:
    def test_seq_tie_stability(self, sim):
        """Events landing on one instant fire in insertion (FIFO) order —
        across zero-delay timeouts, succeeded events and equal-delay
        timeouts scheduled from different call sites."""
        fired = []

        def note(tag):
            return lambda _ev: fired.append(tag)

        for i in range(50):
            t = sim.timeout(0.0)
            t.callbacks.append(note(("zero", i)))
            ev = sim.event()
            ev.succeed()
            ev.callbacks.append(note(("succ", i)))
        sim.run()
        assert fired == [(k, i) for i in range(50) for k in ("zero", "succ")]

    def test_seq_tie_stability_same_future_instant(self, sim):
        fired = []
        for i in range(20):
            t = sim.timeout(1.5)
            t.callbacks.append(lambda _ev, i=i: fired.append(i))
        sim.run()
        assert fired == list(range(20))
        assert sim.now == 1.5

    def test_call_soon_interleaves_fifo(self, sim):
        """call_soon/call_later dispatch at exactly the lane position a
        zero-delay timeout scheduled at the same point would."""
        fired = []
        t1 = sim.timeout(0.0)
        t1.callbacks.append(lambda _ev: fired.append("t1"))
        sim.call_soon(lambda: fired.append("c1"))
        t2 = sim.timeout(0.0)
        t2.callbacks.append(lambda _ev: fired.append("t2"))
        sim.call_later(0.0, lambda: fired.append("c2"))
        sim.run()
        assert fired == ["t1", "c1", "t2", "c2"]

    def test_call_later_orders_with_timeouts(self, sim):
        fired = []
        t = sim.timeout(2.0)
        t.callbacks.append(lambda _ev: fired.append("t"))
        sim.call_later(1.0, lambda: fired.append("early"))
        sim.call_later(2.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["early", "t", "c"]
        assert sim.now == 2.0


class TestPastScheduling:
    def test_deadline_in_past_raises(self, sim):
        sim.run(until=5.0)
        assert sim.now == 5.0
        with pytest.raises(SimError):
            sim.at(4.999)

    def test_deadline_at_now_fires_immediately(self, sim):
        sim.run(until=5.0)
        d = sim.at(5.0, value="on-time")

        def body():
            got = yield d
            return (got, sim.now)

        p = sim.process(body())
        sim.run()
        assert p.value == ("on-time", 5.0)

    def test_negative_timeout_raises(self, sim):
        with pytest.raises(SimError):
            sim.timeout(-1e-9)

    def test_negative_call_later_raises(self, sim):
        with pytest.raises(SimError):
            sim.call_later(-1e-9, lambda: None)


class TestInterruptRaces:
    def test_interrupt_racing_triggered_event(self, sim):
        """Interrupt a process whose awaited event has already been
        succeeded (scheduled to fire this instant, not yet dispatched):
        the interrupt must win and the pending fire must not resurrect or
        crash the process."""
        ev = sim.event()

        def body():
            try:
                yield ev
                return "fired"
            except Interrupt as i:
                return ("interrupted", i.cause)

        p = sim.process(body())

        def racer():
            yield sim.timeout(1.0)
            ev.succeed("value")  # scheduled for dispatch at t=1.0 ...
            p.interrupt(cause="race")  # ... but the interrupt lands first

        sim.process(racer())
        sim.run()
        assert p.value == ("interrupted", "race")
        assert ev.triggered

    def test_interrupt_after_fire_is_noop(self, sim):
        ev = sim.event()

        def body():
            got = yield ev
            yield sim.timeout(1.0)
            return got

        p = sim.process(body())

        def racer():
            yield sim.timeout(1.0)
            ev.succeed("value")

        sim.process(racer())
        sim.run(until=1.0)
        sim.run()
        assert p.value == "value"


class TestCalendarQueue:
    def test_overflow_grows_and_stays_sorted(self):
        q = CalendarQueue(nslots=8, width=1.0)
        times = [float(i) * 0.37 for i in range(1, 200)]
        rng = random.Random(7)
        rng.shuffle(times)
        for t in times:
            q.push(t)
        assert q.resizes > 0, "pushing 25x the slot count must trigger growth"
        popped = [q.pop() for _ in range(len(times))]
        assert popped == sorted(times)
        assert len(q) == 0

    def test_shrink_on_drain(self):
        q = CalendarQueue(nslots=8, width=1.0)
        for i in range(1, 300):
            q.push(float(i))
        grown = q.resizes
        out = []
        for _ in range(295):
            out.append(q.pop())
        assert q.resizes > grown, "draining must shrink the calendar back"
        assert out == sorted(out)
        assert [q.pop() for _ in range(len(q))] == [296.0, 297.0, 298.0, 299.0]

    def test_empty_pop_raises_and_peek_none(self):
        q = CalendarQueue()
        assert q.peek() is None
        with pytest.raises(IndexError):
            q.pop()

    def test_float_boundary_day_skip_regression(self):
        """Timestamps that are exact multiples of the slot width: the
        same-day scan test must use the insertion day function, because
        the day-boundary product ``(i+1) * width`` can round to a value
        that ``int(t / width)`` still maps into day ``i`` — which made
        ``pop`` skip a due day and return an out-of-order minimum."""
        width = 3.0000000000000005e-06  # the width the bug manifested under
        q = CalendarQueue(nslots=32, width=width)
        times = [k * 1e-6 for k in range(1, 65)]  # includes 3.3e-05 == 11*width
        rng = random.Random(3)
        rng.shuffle(times)
        for t in times:
            q.push(t)
        assert [q.pop() for _ in range(len(times))] == sorted(times)

    def test_differential_against_heapq_random(self):
        """Randomized push/pop stream (including sub-microsecond gaps and
        far-future horizons) mirrored against a binary heap."""
        rng = random.Random(2016)
        q = CalendarQueue()
        shadow: list[float] = []
        floor = 0.0
        for _ in range(3000):
            if shadow and rng.random() < 0.45:
                want = heapq.heappop(shadow)
                got = q.pop()
                assert got == want
                floor = got
            else:
                gap = rng.choice([1e-9, 1e-6, 3.7e-4, 1.0, 900.0]) * (
                    1 + rng.random()
                )
                t = floor + gap
                if t not in shadow:
                    q.push(t)
                    heapq.heappush(shadow, t)
        while shadow:
            assert q.pop() == heapq.heappop(shadow)


class TestDifferentialEngines:
    def test_500_step_differential(self):
        """One seeded 500-step program — a churn of processes spawning
        timeouts, zero-delay hops, shared events and interrupts — executed
        on both engines; the full (time, tag) trace must match exactly."""

        def run(kind):
            sim = create_simulator(kind)
            rng = random.Random(20160926)
            trace = []
            shared = {}

            def worker(wid, steps):
                for s in range(steps):
                    roll = rng.random()
                    if roll < 0.45:
                        yield sim.timeout(rng.choice([0.0, 1e-6, 3.3e-5, 0.25]))
                    elif roll < 0.70:
                        ev = sim.event()
                        ev.succeed((wid, s))
                        got = yield ev
                        trace.append((sim.now, "hop", got))
                    elif roll < 0.85:
                        key = rng.randrange(4)
                        ev = shared.pop(key, None)
                        if ev is None:
                            shared[key] = ev = sim.event()
                            got = yield ev
                            trace.append((sim.now, "met", wid, got))
                        else:
                            ev.succeed(wid)
                    else:
                        yield sim.timeout(rng.random())
                    trace.append((sim.now, "step", wid, s))
                return wid

            procs = [sim.process(worker(w, 50)) for w in range(10)]
            sim.run(until=10_000.0)
            # Release rendezvous stragglers deterministically until every
            # worker has finished its 50 steps.
            for _ in range(100):
                if all(not p.is_alive for p in procs):
                    break
                for ev in list(shared.values()):
                    if not ev.triggered:
                        ev.succeed(None)
                shared.clear()
                sim.run(until=sim.now + 1_000.0)
            return trace, [p.value for p in procs], sim.now

        t_heapq = run("heapq")
        t_slotted = run("slotted")
        assert t_heapq == t_slotted
