import numpy as np

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_name_same_stream(self):
        r = RngStreams(7)
        s = r.stream("a")
        assert r.stream("a") is s

    def test_determinism_across_instances(self):
        a = RngStreams(7).stream("x").random(5)
        b = RngStreams(7).stream("x").random(5)
        assert np.allclose(a, b)

    def test_different_names_independent(self):
        r = RngStreams(7)
        a = r.stream("x").random(5)
        b = r.stream("y").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random(5)
        b = RngStreams(2).stream("x").random(5)
        assert not np.allclose(a, b)

    def test_adding_stream_does_not_perturb_existing(self):
        r1 = RngStreams(7)
        _ = r1.stream("a").random(3)
        first = r1.stream("a").random(3)

        r2 = RngStreams(7)
        _ = r2.stream("a").random(3)
        _ = r2.stream("b").random(100)  # new consumer in between
        second = r2.stream("a").random(3)
        assert np.allclose(first, second)

    def test_lognormal_factor_mean_one(self):
        r = RngStreams(42)
        draws = [r.lognormal_factor("jitter", 0.35) for _ in range(20000)]
        assert abs(np.mean(draws) - 1.0) < 0.02

    def test_lognormal_sigma_zero_is_exact_one(self):
        r = RngStreams(42)
        assert r.lognormal_factor("x", 0.0) == 1.0
        assert r.lognormal_factor("x", -1.0) == 1.0

    def test_lognormal_positive(self):
        r = RngStreams(3)
        assert all(r.lognormal_factor("j", 1.0) > 0 for _ in range(100))
