import pytest

from repro.sim.core import Interrupt, SimError, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestEvents:
    def test_timeout_fires_at_time(self, sim):
        seen = []
        t = sim.timeout(5.0, value="x")
        t.callbacks.append(lambda ev: seen.append((sim.now, ev.value)))
        sim.run()
        assert seen == [(5.0, "x")]

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimError):
            sim.timeout(-1)

    def test_succeed_twice_rejected(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(SimError):
            ev.fail("not an exception")

    def test_value_before_outcome(self, sim):
        ev = sim.event()
        with pytest.raises(SimError):
            ev.ok


class TestProcesses:
    def test_sequencing(self, sim):
        log = []

        def proc():
            log.append(("start", sim.now))
            yield sim.timeout(1.0)
            log.append(("mid", sim.now))
            yield sim.timeout(2.0)
            log.append(("end", sim.now))
            return "done"

        p = sim.process(proc())
        result = sim.run(until=p)
        assert result == "done"
        assert log == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]

    def test_yield_from_composition(self, sim):
        def inner():
            yield sim.timeout(1.0)
            return 41

        def outer():
            v = yield from inner()
            return v + 1

        assert sim.run(until=sim.process(outer())) == 42

    def test_exception_propagates_to_waiter(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        def waiter():
            try:
                yield sim.process(bad())
            except ValueError as exc:
                return str(exc)

        assert sim.run(until=sim.process(waiter())) == "boom"

    def test_unwaited_crash_surfaces(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("lost")

        sim.process(bad())
        with pytest.raises(RuntimeError, match="lost"):
            sim.run()

    def test_yielding_non_event_fails(self, sim):
        def bad():
            yield 42

        def waiter():
            with pytest.raises(SimError):
                yield sim.process(bad())

        sim.run(until=sim.process(waiter()))

    def test_waiting_on_fired_event(self, sim):
        ev = sim.event()
        ev.succeed("v")

        def proc():
            got = yield ev
            return got

        p = sim.process(proc())
        sim.run()
        # already-fired events are re-delivered via a zero-delay kick
        assert p.value == "v"

    def test_interrupt(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as i:
                return ("interrupted", i.cause, sim.now)

        p = sim.process(sleeper())

        def killer():
            yield sim.timeout(2.0)
            p.interrupt(cause="stop")

        sim.process(killer())
        sim.run()
        assert p.value == ("interrupted", "stop", 2.0)

    def test_run_until_deadline_advances_clock(self, sim):
        sim.timeout(1.0)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_deadlock_detection(self, sim):
        def stuck():
            yield sim.event()  # never triggered

        p = sim.process(stuck())
        with pytest.raises(SimError, match="deadlock"):
            sim.run(until=p)

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimError):
            sim.process(lambda: None)  # type: ignore[arg-type]


class TestConditions:
    def test_all_of_collects_values(self, sim):
        def proc():
            events = [sim.timeout(d, value=d) for d in (3.0, 1.0, 2.0)]
            values = yield sim.all_of(events)
            return (values, sim.now)

        values, now = sim.run(until=sim.process(proc()))
        assert values == [3.0, 1.0, 2.0]
        assert now == 3.0

    def test_any_of_first_wins(self, sim):
        def proc():
            winner = yield sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
            return (winner.value, sim.now)

        value, now = sim.run(until=sim.process(proc()))
        assert value == "fast"
        assert now == 1.0

    def test_all_of_empty(self, sim):
        def proc():
            values = yield sim.all_of([])
            return values

        assert sim.run(until=sim.process(proc())) == []

    def test_all_of_failure(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise KeyError("k")

        def proc():
            with pytest.raises(KeyError):
                yield sim.all_of([sim.timeout(2.0), sim.process(bad())])

        sim.run(until=sim.process(proc()))


class TestDeterminism:
    def test_same_time_fifo_order(self, sim):
        order = []
        for i in range(10):
            t = sim.timeout(1.0, value=i)
            t.callbacks.append(lambda ev: order.append(ev.value))
        sim.run()
        assert order == list(range(10))

    def test_two_runs_identical(self):
        def trace():
            sim = Simulator()
            log = []

            def proc(name, delay):
                yield sim.timeout(delay)
                log.append((name, sim.now))
                yield sim.timeout(delay)
                log.append((name, sim.now))

            for i in range(5):
                sim.process(proc(f"p{i}", 1.0 + i * 0.5))
            sim.run()
            return log

        assert trace() == trace()
