import pytest

from repro.sim.core import SimError, Simulator
from repro.sim.resources import Resource, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_fifo_granting(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def user(name, hold):
            yield res.request()
            order.append((name, sim.now))
            yield sim.timeout(hold)
            res.release()

        for i in range(3):
            sim.process(user(i, 2.0))
        sim.run()
        assert order == [(0, 0.0), (1, 2.0), (2, 4.0)]

    def test_capacity_two(self, sim):
        res = Resource(sim, capacity=2)
        starts = []

        def user(i):
            yield res.request()
            starts.append((i, sim.now))
            yield sim.timeout(1.0)
            res.release()

        for i in range(4):
            sim.process(user(i))
        sim.run()
        assert starts == [(0, 0.0), (1, 0.0), (2, 1.0), (3, 1.0)]

    def test_release_idle_rejected(self, sim):
        res = Resource(sim)
        with pytest.raises(SimError):
            res.release()

    def test_queue_len(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            yield res.request()
            yield sim.timeout(10.0)
            res.release()

        def waiter():
            yield res.request()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=1.0)
        assert res.in_use == 1
        assert res.queue_len == 1

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimError):
            Resource(sim, capacity=0)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("a")

        def getter():
            item = yield store.get()
            return item

        assert sim.run(until=sim.process(getter())) == "a"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def getter():
            item = yield store.get()
            return (item, sim.now)

        def putter():
            yield sim.timeout(3.0)
            store.put("late")

        p = sim.process(getter())
        sim.process(putter())
        sim.run()
        assert p.value == ("late", 3.0)

    def test_fifo_order(self, sim):
        store = Store(sim)
        for i in range(5):
            store.put(i)
        got = []

        def getter():
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        sim.run(until=sim.process(getter()))
        assert got == [0, 1, 2, 3, 4]

    def test_try_get(self, sim):
        store = Store(sim)
        assert store.try_get() is None
        store.put(1)
        assert store.try_get() == 1
        assert len(store) == 0
