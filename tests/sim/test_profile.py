"""SimProfiler: collection primitives, engine hooks, trace export."""

import pytest

from repro.net.fabric import Fabric
from repro.sim.core import Simulator
from repro.sim.profile import SimProfiler
from repro.sim.trace import Tracer


def test_counters_accumulate():
    prof = SimProfiler()
    prof.count("a")
    prof.count("a", 4)
    prof.count("b")
    assert prof.counters == {"a": 5, "b": 1}


def test_timer_accumulates_and_counts_calls():
    prof = SimProfiler()
    for _ in range(3):
        with prof.timer("section"):
            pass
    assert prof.timer_calls["section"] == 3
    assert prof.timings["section"] >= 0.0


def test_timer_records_on_exception():
    prof = SimProfiler()
    with pytest.raises(ValueError):
        with prof.timer("boom"):
            raise ValueError()
    assert prof.timer_calls["boom"] == 1


def test_heap_sample_tracks_peak():
    prof = SimProfiler()
    for depth in (3, 9, 5):
        prof.heap_sample(depth)
    assert prof.heap_peak == 9


def test_snapshot_shape_and_sim_totals():
    prof = SimProfiler()
    prof.count("x")
    with prof.timer("t"):
        pass
    sim = Simulator()
    sim.timeout(1.5)
    sim.run()
    snap = prof.snapshot(sim)
    assert snap["counters"] == {"x": 1}
    assert snap["timer_calls"] == {"t": 1}
    assert snap["events_fired"] == sim.events_fired
    assert snap["sim_time"] == 1.5
    assert "events_fired" not in prof.snapshot()  # no sim passed


def test_engine_hooks_populate_profiler():
    """An attached profiler sees fabric recomputes and heap growth."""
    prof = SimProfiler()
    sim = Simulator()
    sim.profiler = prof
    fabric = Fabric(sim, num_nodes=4, nic_bw=1000.0, latency=1e-4)
    for i in range(8):
        fabric.start_flow(i % 4, (i + 1) % 4, 500)
    sim.run()
    assert prof.counters["fabric.recompute_flows"] >= 8
    assert prof.timer_calls["fabric.recompute"] >= 1
    assert prof.timings["fabric.recompute"] > 0.0
    assert prof.heap_peak >= 1


def test_profiler_does_not_change_results():
    def run(profiler):
        sim = Simulator()
        sim.profiler = profiler
        fabric = Fabric(sim, num_nodes=4, nic_bw=1000.0, latency=1e-4)
        for i in range(10):
            fabric.start_flow(i % 4, (i + 2) % 4, 700)
        sim.run()
        return sim.now, sim.events_fired

    assert run(None) == run(SimProfiler())


def test_chrome_trace_merge():
    prof = SimProfiler()
    prof.count("fabric.recompute_flows", 7)
    with prof.timer("fabric.recompute"):
        pass
    tracer = Tracer(enabled=True)
    tracer.emit(0.25, "pfs", "rpc")
    doc = tracer.to_chrome_trace(profiler=prof)
    names = {e["name"] for e in doc["traceEvents"]}
    assert "rpc" in names
    assert "profiler/fabric.recompute_flows" in names
    assert "profiler/fabric.recompute.wall_s" in names
    assert doc["otherData"]["profiler"]["counters"] == {"fabric.recompute_flows": 7}
    counter_rows = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert all(e["tid"] == "profiler" for e in counter_rows)
